package trace

import (
	"sync"
	"time"

	"t3/internal/clock"
	"t3/internal/obs"
)

// Drift detection: a Detector watches a windowed quantile of the online
// q-error histogram (t3_qerror_drift, fed by t3.RecordObserved) and trips
// an alarm when recent accuracy degrades past a threshold. Hysteresis on
// both edges — FireAfter consecutive bad ticks to raise, ClearAfter good
// ticks to clear, and a minimum observation count per window — keeps a
// single slow outlier query or an idle window from flapping the alarm.

// Drift gauges on the default registry. The alarm gauge is the alerting
// surface; the window gauges make "what did the detector see" one scrape
// away instead of a log dive.
var (
	// DriftAlarm is 1 while the drift detector's alarm is raised, else 0.
	DriftAlarm = obs.Default.NewGauge("t3_drift_alarm",
		"1 while windowed q-error drift exceeds the alarm threshold.")
	// DriftWindowQuantile is the watched windowed q-error quantile at the
	// last detector tick.
	DriftWindowQuantile = obs.Default.NewGauge("t3_drift_window_qerror",
		"Watched windowed q-error quantile at the last drift tick.")
	// DriftWindowCount is the number of q-error observations inside the
	// window at the last detector tick.
	DriftWindowCount = obs.Default.NewGauge("t3_drift_window_observations",
		"Q-error observations inside the drift window at the last tick.")
	// DriftAlarms counts raise transitions of the drift alarm.
	DriftAlarms = obs.Default.NewCounter("t3_drift_alarms_total",
		"Drift alarm raise transitions.")
)

// DetectorConfig configures a drift Detector. Zero fields take defaults.
type DetectorConfig struct {
	// Epochs is the number of snapshots the window retains; with tick
	// period p the sliding span is (Epochs-1) x p. Default 12.
	Epochs int
	// Quantile is the watched q-error quantile. Default 0.9.
	Quantile float64
	// Threshold raises the alarm when the windowed quantile exceeds it.
	// Default 2.0 (predictions off by more than 2x at the watched tail).
	Threshold float64
	// Clear re-arms the alarm when the windowed quantile falls below it.
	// Default 0.8 x Threshold; must be <= Threshold.
	Clear float64
	// MinCount is the minimum observations a window needs before its
	// quantile is trusted; sparser windows hold the previous state.
	// Default 20.
	MinCount uint64
	// FireAfter is how many consecutive over-threshold ticks raise the
	// alarm. Default 2.
	FireAfter int
	// ClearAfter is how many consecutive under-clear ticks clear it.
	// Default 2.
	ClearAfter int
	// Clock supplies time to Run's ticker. Default clock.Real; tests and
	// the retrain controller's deterministic harness inject a fake.
	Clock clock.Clock `json:"-"`
}

func (c *DetectorConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 12
	}
	if c.Quantile == 0 {
		c.Quantile = 0.9
	}
	if c.Threshold == 0 {
		c.Threshold = 2.0
	}
	if c.Clear == 0 || c.Clear > c.Threshold {
		c.Clear = 0.8 * c.Threshold
	}
	if c.MinCount == 0 {
		c.MinCount = 20
	}
	if c.FireAfter == 0 {
		c.FireAfter = 2
	}
	if c.ClearAfter == 0 {
		c.ClearAfter = 2
	}
	if c.Clock == nil {
		c.Clock = clock.Real
	}
}

// DriftEvent describes one alarm transition, passed to OnAlarm callbacks.
type DriftEvent struct {
	// Raised is true when the alarm fired, false when it cleared.
	Raised bool
	// At is the tick time of the transition.
	At time.Time
	// Quantile is the watched windowed q-error quantile at the transition.
	Quantile float64
	// Count is the window's observation count at the transition.
	Count uint64
	// Threshold is the configured raise threshold.
	Threshold float64
}

// DriftStatus is a point-in-time view of the detector, for /debug/drift.
type DriftStatus struct {
	// Raised is whether the alarm is currently raised.
	Raised bool
	// WindowQuantile is the watched quantile over the window at the last
	// tick (0 until the window has two epochs).
	WindowQuantile float64
	// WindowCount is the window's observation count at the last tick.
	WindowCount uint64
	// WindowSpan is the wall time the window covered at the last tick.
	WindowSpan time.Duration
	// LifetimeQuantile is the same quantile over the full histogram.
	LifetimeQuantile float64
	// LifetimeCount is the full histogram's observation count.
	LifetimeCount uint64
	// Ticks is the number of detector ticks so far.
	Ticks uint64
	// LastTransition is the time of the most recent raise/clear (zero if
	// none yet).
	LastTransition time.Time
	// Config echoes the resolved configuration.
	Config DetectorConfig
}

// Detector watches a windowed quantile of a histogram and raises/clears an
// alarm with hysteresis. Drive it with Tick from one ticker goroutine;
// Status and OnAlarm are safe from any goroutine.
type Detector struct {
	cfg    DetectorConfig
	window *Window

	mu        sync.Mutex
	raised    bool
	overRuns  int // consecutive ticks over Threshold
	underRuns int // consecutive ticks under Clear
	last      DriftStatus
	callbacks []func(DriftEvent)
}

// NewDetector builds a detector over src (normally obs.QErrorDrift) with
// the given config (zero fields take defaults).
func NewDetector(src *obs.Histogram, cfg DetectorConfig) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg, window: NewWindow(src, cfg.Epochs)}
}

// NewQErrorDetector is NewDetector over the online q-error histogram — the
// drift signal of record.
func NewQErrorDetector(cfg DetectorConfig) *Detector {
	return NewDetector(obs.QErrorDrift, cfg)
}

// OnAlarm registers a callback invoked (synchronously, from Tick) on every
// raise and clear transition. The retrain controller hook.
func (d *Detector) OnAlarm(fn func(DriftEvent)) {
	d.mu.Lock()
	d.callbacks = append(d.callbacks, fn)
	d.mu.Unlock()
}

// Tick advances the window one epoch and evaluates the alarm. Call at a
// fixed period from a single goroutine.
func (d *Detector) Tick(now time.Time) {
	d.window.Tick(now)
	delta, span, ok := d.window.Delta()

	d.mu.Lock()
	d.last.Ticks++
	life := d.window.Lifetime()
	d.last.LifetimeQuantile = life.Quantile(d.cfg.Quantile)
	d.last.LifetimeCount = life.Count
	d.last.Config = d.cfg

	var q float64
	if ok {
		q = delta.Quantile(d.cfg.Quantile)
		d.last.WindowQuantile = q
		d.last.WindowCount = delta.Count
		d.last.WindowSpan = span
	}
	DriftWindowQuantile.Set(d.last.WindowQuantile)
	DriftWindowCount.Set(float64(d.last.WindowCount))

	var fired []func(DriftEvent)
	var ev DriftEvent
	if ok && delta.Count >= d.cfg.MinCount {
		if q > d.cfg.Threshold {
			d.overRuns++
			d.underRuns = 0
		} else if q < d.cfg.Clear {
			d.underRuns++
			d.overRuns = 0
		} else {
			// Inside the hysteresis band: hold state, reset both runs.
			d.overRuns, d.underRuns = 0, 0
		}
		transition := false
		if !d.raised && d.overRuns >= d.cfg.FireAfter {
			d.raised = true
			transition = true
			DriftAlarms.Inc()
		} else if d.raised && d.underRuns >= d.cfg.ClearAfter {
			d.raised = false
			transition = true
		}
		if transition {
			d.overRuns, d.underRuns = 0, 0
			d.last.LastTransition = now
			ev = DriftEvent{
				Raised:    d.raised,
				At:        now,
				Quantile:  q,
				Count:     delta.Count,
				Threshold: d.cfg.Threshold,
			}
			fired = append(fired, d.callbacks...)
		}
	}
	d.last.Raised = d.raised
	if d.raised {
		DriftAlarm.Set(1)
	} else {
		DriftAlarm.Set(0)
	}
	d.mu.Unlock()

	// Callbacks run outside the lock so they may call Status / OnAlarm.
	for _, fn := range fired {
		fn(ev)
	}
}

// Status returns the detector's view as of the last tick.
func (d *Detector) Status() DriftStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Run ticks the detector every period until the stop channel closes —
// convenience wrapper for servers. Time comes from the configured Clock, so
// a fake clock drives the whole loop deterministically in tests.
func (d *Detector) Run(period time.Duration, stop <-chan struct{}) {
	if period <= 0 {
		period = time.Second
	}
	t := d.cfg.Clock.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case now := <-t.C():
			d.Tick(now)
		case <-stop:
			return
		}
	}
}
