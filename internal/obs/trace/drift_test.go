package trace

import (
	"testing"
	"time"

	"t3/internal/clock"
	"t3/internal/obs"
)

// driftHarness drives a detector over a private q-error histogram with a
// deterministic clock.
type driftHarness struct {
	h   *obs.Histogram
	d   *Detector
	now time.Time
}

func newDriftHarness(cfg DetectorConfig) *driftHarness {
	h := obs.NewHistogram("t3_test_drift", "test", obs.UnitMilli)
	return &driftHarness{h: h, d: NewDetector(h, cfg), now: time.Unix(10000, 0)}
}

// tick records n q-error observations of value q, then advances one epoch.
func (dh *driftHarness) tick(n int, q float64) {
	for i := 0; i < n; i++ {
		dh.h.ObserveFloat(q)
	}
	dh.now = dh.now.Add(time.Second)
	dh.d.Tick(dh.now)
}

func TestDriftDetectorFiresAndClears(t *testing.T) {
	// Threshold 4 with the default clear (3.2): healthy q-errors around 2
	// land safely below, drifted ones around 8 safely above, even at the
	// histogram's one-octave resolution.
	cfg := DetectorConfig{
		Epochs: 4, Quantile: 0.9, Threshold: 4.0,
		MinCount: 10, FireAfter: 2, ClearAfter: 2,
	}
	dh := newDriftHarness(cfg)

	var events []DriftEvent
	dh.d.OnAlarm(func(ev DriftEvent) { events = append(events, ev) })

	// Healthy regime: three epochs of accurate predictions.
	for i := 0; i < 3; i++ {
		dh.tick(100, 1.8)
		if st := dh.d.Status(); st.Raised {
			t.Fatalf("alarm raised on healthy tick %d: %+v", i, st)
		}
	}

	// Drift: two epochs dominated by 8x mispredictions. FireAfter=2 means
	// the first bad tick arms, the second fires.
	dh.tick(200, 8.0)
	if dh.d.Status().Raised {
		t.Fatal("alarm fired after one bad tick despite FireAfter=2")
	}
	dh.tick(200, 8.0)
	st := dh.d.Status()
	if !st.Raised {
		t.Fatalf("alarm did not fire after two bad ticks: %+v", st)
	}
	if st.WindowQuantile <= cfg.Threshold {
		t.Fatalf("fired with window quantile %v <= threshold", st.WindowQuantile)
	}
	if len(events) != 1 || !events[0].Raised {
		t.Fatalf("events after fire: %+v", events)
	}
	if DriftAlarm.Value() != 1 {
		t.Fatalf("t3_drift_alarm = %v after fire, want 1", DriftAlarm.Value())
	}

	// Recovery: healthy epochs. The drifted mass must first slide out of
	// the 3-tick window, then ClearAfter=2 good ticks clear the alarm.
	cleared := -1
	for i := 0; i < 8; i++ {
		dh.tick(400, 1.8)
		if !dh.d.Status().Raised {
			cleared = i
			break
		}
	}
	if cleared < 0 {
		t.Fatalf("alarm never cleared during recovery: %+v", dh.d.Status())
	}
	if cleared < 2 {
		t.Fatalf("alarm cleared after only %d healthy ticks; drifted mass was still in the window", cleared+1)
	}
	if len(events) != 2 || events[1].Raised {
		t.Fatalf("events after clear: %+v", events)
	}
	if DriftAlarm.Value() != 0 {
		t.Fatalf("t3_drift_alarm = %v after clear, want 0", DriftAlarm.Value())
	}
}

func TestDriftDetectorHoldsOnSparseWindow(t *testing.T) {
	cfg := DetectorConfig{
		Epochs: 3, Quantile: 0.9, Threshold: 4.0,
		MinCount: 50, FireAfter: 1, ClearAfter: 1,
	}
	dh := newDriftHarness(cfg)
	// Terrible q-errors, but below MinCount per window: no alarm.
	for i := 0; i < 6; i++ {
		dh.tick(10, 100.0)
		if dh.d.Status().Raised {
			t.Fatalf("alarm fired on a %d-observation window with MinCount=%d",
				dh.d.Status().WindowCount, cfg.MinCount)
		}
	}
	// Same values at volume: fires immediately (FireAfter=1).
	dh.tick(200, 100.0)
	if !dh.d.Status().Raised {
		t.Fatal("alarm did not fire once the window met MinCount")
	}
}

func TestDriftDetectorDefaults(t *testing.T) {
	d := NewQErrorDetector(DetectorConfig{})
	st := d.Status()
	c := d.cfg
	if c.Epochs != 12 || c.Quantile != 0.9 || c.Threshold != 2.0 ||
		c.Clear != 1.6 || c.MinCount != 20 || c.FireAfter != 2 || c.ClearAfter != 2 {
		t.Fatalf("defaults = %+v", c)
	}
	if st.Raised || st.Ticks != 0 {
		t.Fatalf("fresh detector status = %+v", st)
	}
}

func TestDriftDetectorRunStops(t *testing.T) {
	d := NewQErrorDetector(DetectorConfig{Epochs: 2})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(time.Millisecond, stop); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	if d.Status().Ticks == 0 {
		t.Fatal("Run never ticked")
	}
}

// TestDriftDetectorRunFakeClock drives Run entirely from a fake clock: no
// sleeps, every tick accounted for.
func TestDriftDetectorRunFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(5000, 0))
	h := obs.NewHistogram("t3_test_drift_fake", "test", obs.UnitMilli)
	d := NewDetector(h, DetectorConfig{Epochs: 2, Clock: fake})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(time.Second, stop); close(done) }()

	// Wait until Run has built its ticker — an Advance before that fires
	// nothing.
	for deadline := time.Now().Add(time.Second); fake.Tickers() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("Run never created its ticker")
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Each Advance fires at most one buffered tick; poll Status so the
	// runner goroutine has drained the previous one before the next fires.
	const ticks = 5
	for i := 0; i < ticks; i++ {
		fake.Advance(time.Second)
		deadline := time.Now().Add(time.Second)
		for d.Status().Ticks != uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d not processed: status %+v", i+1, d.Status())
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop under fake clock")
	}
	if got := d.Status().Ticks; got != ticks {
		t.Fatalf("Run processed %d ticks, want %d", got, ticks)
	}
}

// TestDetectorTickZeroAlloc pins the steady-state tick path at zero
// allocations: drift detection must be free to run at high frequency inside
// the serving process. (Alarm transitions may allocate for the callback
// snapshot; steady state must not.)
func TestDetectorTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	h := obs.NewHistogram("t3_test_drift_alloc", "test", obs.UnitMilli)
	d := NewDetector(h, DetectorConfig{Epochs: 4, MinCount: 10})
	for i := 0; i < 500; i++ {
		h.ObserveFloat(1.5)
	}
	now := time.Unix(7000, 0)
	d.Tick(now) // warm the window
	allocs := testing.AllocsPerRun(500, func() {
		now = now.Add(time.Second)
		h.ObserveFloat(1.5)
		d.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("Detector.Tick allocates %v times per call, want 0", allocs)
	}
}
