package trace

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"t3/internal/obs"
)

// sortedQuantile is the exact reference: the ceil(p*n)-th smallest value.
func sortedQuantile(vals []uint64, p float64) float64 {
	s := append([]uint64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx])
}

// withinOctave checks the histogram's one-octave accuracy contract: the
// estimate and the reference share a power-of-two bucket, so they differ by
// at most 2x in either direction.
func withinOctave(t *testing.T, name string, got, ref float64) {
	t.Helper()
	if ref == 0 {
		if got != 0 {
			t.Fatalf("%s: got %v, reference 0", name, got)
		}
		return
	}
	if got < ref/2 || got > ref*2 {
		t.Fatalf("%s: got %v, reference %v (outside one octave)", name, got, ref)
	}
}

func TestWindowDeltaMatchesSortedReference(t *testing.T) {
	h := obs.NewHistogram("t3_test_window", "test", obs.UnitCount)
	w := NewWindow(h, 4)
	rng := rand.New(rand.NewSource(7))

	// Epoch 0: old regime — values in [1, 256). These must NOT appear in
	// the windowed view once the window slides past them.
	for i := 0; i < 4000; i++ {
		h.Record(uint64(1 + rng.Intn(255)))
	}
	base := time.Unix(1000, 0)
	w.Tick(base)

	// New regime: values in [4096, 65536), across three epochs.
	var recent []uint64
	for e := 1; e <= 3; e++ {
		for i := 0; i < 1000; i++ {
			v := uint64(4096 + rng.Intn(61440))
			h.Record(v)
			recent = append(recent, v)
		}
		w.Tick(base.Add(time.Duration(e) * time.Second))
	}

	delta, span, ok := w.Delta()
	if !ok {
		t.Fatal("window not ready after 4 ticks")
	}
	if span != 3*time.Second {
		t.Fatalf("span = %v, want 3s", span)
	}
	if delta.Count != uint64(len(recent)) {
		t.Fatalf("delta count = %d, want %d (old-regime mass leaked in)", delta.Count, len(recent))
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		withinOctave(t, "windowed quantile", delta.Quantile(p), sortedQuantile(recent, p))
	}
	// The lifetime view still carries the old mass, so its p50 sits far
	// below the windowed p50 — the whole point of windowing.
	if life := w.Lifetime(); life.Quantile(0.5) >= delta.Quantile(0.5) {
		t.Fatalf("lifetime p50 %v not below windowed p50 %v",
			life.Quantile(0.5), delta.Quantile(0.5))
	}
}

func TestWindowSlidesPastOldEpochs(t *testing.T) {
	h := obs.NewHistogram("t3_test_slide", "test", obs.UnitCount)
	w := NewWindow(h, 3) // span of 2 ticks
	base := time.Unix(0, 0)

	h.Record(100)
	w.Tick(base.Add(1 * time.Second)) // epoch holds {100}
	w.Tick(base.Add(2 * time.Second))
	w.Tick(base.Add(3 * time.Second))
	// The oldest retained epoch is now AFTER the 100 was recorded.
	delta, span, ok := w.Delta()
	if !ok || delta.Count != 0 {
		t.Fatalf("count = %d (ok=%v), want 0 after sliding past", delta.Count, ok)
	}
	if span != 2*time.Second {
		t.Fatalf("span = %v, want 2s", span)
	}
}

func TestWindowNotReadyBeforeTwoTicks(t *testing.T) {
	h := obs.NewHistogram("t3_test_ready", "test", obs.UnitCount)
	w := NewWindow(h, 4)
	if _, _, ok := w.Delta(); ok {
		t.Fatal("empty window reported ready")
	}
	w.Tick(time.Unix(1, 0))
	if _, _, ok := w.Delta(); ok {
		t.Fatal("single-epoch window reported ready")
	}
	w.Tick(time.Unix(2, 0))
	if _, _, ok := w.Delta(); !ok {
		t.Fatal("two-epoch window not ready")
	}
}

func TestHistSnapshotSub(t *testing.T) {
	h := obs.NewHistogram("t3_test_sub", "test", obs.UnitCount)
	h.Record(10)
	h.Record(1000)
	old := h.Snapshot()
	h.Record(100000)
	h.Record(100001)
	cur := h.Snapshot()
	cur.Sub(old)
	if cur.Count != 2 {
		t.Fatalf("sub count = %d, want 2", cur.Count)
	}
	if cur.Sum != 200001 {
		t.Fatalf("sub sum = %v, want 200001", cur.Sum)
	}
	// Subtracting a snapshot from itself leaves nothing, never underflows.
	self := h.Snapshot()
	self.Sub(h.Snapshot())
	if self.Count != 0 || self.Sum < 0 {
		t.Fatalf("self-sub left count=%d sum=%v", self.Count, self.Sum)
	}
}
