package trace

import (
	"testing"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/wire"
	"t3/internal/workload"
)

// exemplarPlans returns distinct annotated plans to mispredict.
func exemplarPlans(t *testing.T) []*plan.Node {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_exemplar", 0.01, 3))
	qs := workload.TPCHBenchmarkQueries(in)
	roots := make([]*plan.Node, 0, len(qs))
	for _, q := range qs {
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, q.Root)
	}
	if len(roots) < 4 {
		t.Fatalf("need >= 4 distinct plans, have %d", len(roots))
	}
	return roots
}

func TestExemplarFrameReplaysToIdenticalFeatures(t *testing.T) {
	roots := exemplarPlans(t)
	reg := feature.NewDefaultRegistry()
	var dec wire.Decoder
	now := time.Unix(5000, 0)

	for qi, root := range roots {
		s := NewExemplarStore(1)
		// actual = 5x predicted: q-error 5.
		s.Offer(root, plan.TrueCards, 1_000_000, 5_000_000, now)
		frame := s.Frame(0)
		if frame == nil {
			t.Fatalf("q%d: no frame captured", qi)
		}
		mode, _, err := wire.ParseHeader(frame)
		if err != nil {
			t.Fatalf("q%d: captured frame has bad header: %v", qi, err)
		}
		if mode != plan.TrueCards {
			t.Fatalf("q%d: mode %d, want %d", qi, mode, plan.TrueCards)
		}
		back, err := dec.Decode(frame[wire.HeaderSize:])
		if err != nil {
			t.Fatalf("q%d: captured frame does not decode: %v", qi, err)
		}
		origVecs, _ := reg.PlanVectors(root, mode)
		backVecs, _ := reg.PlanVectors(back, mode)
		if len(origVecs) != len(backVecs) {
			t.Fatalf("q%d: pipeline count %d -> %d", qi, len(origVecs), len(backVecs))
		}
		for p := range origVecs {
			for f := range origVecs[p] {
				if origVecs[p][f] != backVecs[p][f] {
					t.Fatalf("q%d pipeline %d feature %d: %v -> %v",
						qi, p, f, origVecs[p][f], backVecs[p][f])
				}
			}
		}
	}
}

func TestExemplarTopKOrderingAndDedup(t *testing.T) {
	roots := exemplarPlans(t)
	s := NewExemplarStore(3)
	now := time.Unix(6000, 0)

	// Four plans with q-errors 2, 9, 4, 7: only the worst three survive.
	qs := []int64{2, 9, 4, 7}
	for i, root := range roots[:4] {
		s.Offer(root, plan.TrueCards, 1_000_000, qs[i]*1_000_000, now)
	}
	got := s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("store holds %d, want 3", len(got))
	}
	wantQ := []float64{9, 7, 4}
	for i, e := range got {
		if e.QError != wantQ[i] {
			t.Fatalf("rank %d q-error = %v, want %v", i, e.QError, wantQ[i])
		}
	}

	// Re-offering a stored plan with a better score is a no-op...
	s.Offer(roots[1], plan.TrueCards, 1_000_000, 3_000_000, now)
	if got := s.Snapshot(); got[0].QError != 9 {
		t.Fatalf("better re-offer overwrote worst: %v", got[0].QError)
	}
	// ...and with a worse score advances it in place, not as a duplicate.
	s.Offer(roots[2], plan.TrueCards, 1_000_000, 20_000_000, now)
	got = s.Snapshot()
	if len(got) != 3 || got[0].QError != 20 {
		t.Fatalf("worse re-offer not promoted: %+v", got)
	}
	fp := map[uint64]int{}
	for _, e := range got {
		fp[e.Fingerprint]++
	}
	for f, n := range fp {
		if n > 1 {
			t.Fatalf("fingerprint %x stored %d times", f, n)
		}
	}
}

func TestExemplarFloorRejectsCheaply(t *testing.T) {
	roots := exemplarPlans(t)
	s := NewExemplarStore(2)
	now := time.Unix(7000, 0)
	s.Offer(roots[0], plan.TrueCards, 1_000_000, 10_000_000, now) // q 10
	s.Offer(roots[1], plan.TrueCards, 1_000_000, 8_000_000, now)  // q 8
	// Full store, floor 8: a q-error 2 offer must not allocate (it is
	// rejected before the frame is encoded).
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Offer(roots[2], plan.TrueCards, 1_000_000, 2_000_000, now)
	})
	if allocs != 0 {
		t.Fatalf("floor-rejected offer allocates %.2f allocs/op, want 0", allocs)
	}
	if s.Len() != 2 {
		t.Fatalf("rejected offer changed the store: len %d", s.Len())
	}
}

func TestExemplarIgnoresDegenerateInputs(t *testing.T) {
	roots := exemplarPlans(t)
	s := NewExemplarStore(2)
	now := time.Unix(8000, 0)
	s.Offer(nil, plan.TrueCards, 1, 1, now)
	s.Offer(roots[0], plan.TrueCards, 0, 1_000_000, now)
	s.Offer(roots[0], plan.TrueCards, 1_000_000, 0, now)
	s.Offer(roots[0], plan.TrueCards, -5, -5, now)
	if s.Len() != 0 {
		t.Fatalf("degenerate offers were stored: %d", s.Len())
	}
}

func TestKeyFingerprintSeparatesHalves(t *testing.T) {
	a := KeyFingerprint(wire.Key{Struct: 0x1234, Cards: 0x5678})
	b := KeyFingerprint(wire.Key{Struct: 0x5678, Cards: 0x1234})
	if a == b {
		t.Fatal("swapped halves collide")
	}
	if KeyFingerprint(wire.Key{}) != 0 {
		t.Fatal("zero key should fingerprint to 0")
	}
}
