package trace

import (
	"sync"
	"time"

	"t3/internal/obs"
)

// Window turns a lifetime histogram into a sliding one. A ticker captures
// an epoch snapshot of the source histogram every period; the windowed view
// is newest snapshot minus the oldest retained one (obs.HistSnapshot.Sub),
// which is exact because per-bucket counts are monotone. This is how drift
// stays visible: after a million accurate predictions, the lifetime
// q-error p99 barely moves when a workload shifts, but the windowed p99
// jumps within one window span.
type Window struct {
	src *obs.Histogram

	mu     sync.Mutex
	epochs []epoch // ring, fixed capacity
	head   int     // next write position
	filled int     // number of valid epochs
}

type epoch struct {
	at   time.Time
	snap obs.HistSnapshot
}

// NewWindow builds a window over src retaining epochs snapshots (minimum
// 2 — a window needs both ends). With a tick period p the sliding span is
// (epochs-1) × p.
func NewWindow(src *obs.Histogram, epochs int) *Window {
	if epochs < 2 {
		epochs = 2
	}
	return &Window{src: src, epochs: make([]epoch, epochs)}
}

// Span returns the number of tick periods the window covers.
func (w *Window) Span() int { return len(w.epochs) - 1 }

// Tick captures an epoch snapshot at the given time. Call it at a fixed
// period from a single ticker goroutine (concurrent calls are safe but
// make the window span uneven).
func (w *Window) Tick(now time.Time) {
	snap := w.src.Snapshot()
	w.mu.Lock()
	w.epochs[w.head] = epoch{at: now, snap: snap}
	w.head = (w.head + 1) % len(w.epochs)
	if w.filled < len(w.epochs) {
		w.filled++
	}
	w.mu.Unlock()
}

// Delta returns the observations recorded between the oldest retained
// epoch and the newest, together with the wall span between them. ok is
// false until two ticks have happened.
func (w *Window) Delta() (delta obs.HistSnapshot, span time.Duration, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled < 2 {
		return obs.HistSnapshot{}, 0, false
	}
	newest := w.epochs[(w.head-1+len(w.epochs))%len(w.epochs)]
	oldest := w.epochs[(w.head-w.filled+len(w.epochs))%len(w.epochs)]
	delta = newest.snap
	delta.Sub(oldest.snap)
	return delta, newest.at.Sub(oldest.at), true
}

// Lifetime returns the newest full snapshot of the source histogram (live,
// not epoch-aligned) — the baseline the windowed view is compared against.
func (w *Window) Lifetime() obs.HistSnapshot { return w.src.Snapshot() }
