package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/wire"
)

// Misprediction exemplars: the top-K worst predictions by q-error, each
// captured as a complete binary request frame (internal/wire) so a bad
// prediction can be replayed byte-for-byte against a running server or a
// retrained model. Aggregates say HOW wrong the model is; exemplars say ON
// WHAT — the difference between "p99 q-error is 3.1" and "we mispredict
// 3-way hash-join plans with tiny build sides".

// DefaultExemplars is how many worst predictions the default store keeps.
const DefaultExemplars = 16

// Exemplar is one captured misprediction.
type Exemplar struct {
	// Fingerprint identifies the plan (KeyFingerprint of its wire.Key).
	Fingerprint uint64
	// Mode is the plan.CardMode the prediction used.
	Mode uint8
	// QError is max(predicted/actual, actual/predicted).
	QError float64
	// PredictedNs and ActualNs are the prediction and the measurement.
	PredictedNs int64
	// ActualNs is the measured execution time.
	ActualNs int64
	// AtUnixNs is when the misprediction was observed.
	AtUnixNs int64
	// Frame is the complete wire request frame (header + plan payload):
	// POST it to /predict.bin to replay the prediction.
	Frame []byte
}

// ExemplarStore keeps the top-K offers by q-error, deduplicated by plan
// fingerprint (a plan appears once, at its worst). Safe for concurrent
// use; Offer rejects non-qualifying scores with one atomic load before
// taking any lock or encoding anything.
type ExemplarStore struct {
	k     int
	floor atomic.Uint64 // Float64bits of the lowest kept q-error; valid when full

	mu      sync.Mutex
	entries []Exemplar // sorted descending by QError
}

// NewExemplarStore builds a store keeping the k worst offers (minimum 1).
func NewExemplarStore(k int) *ExemplarStore {
	if k < 1 {
		k = 1
	}
	return &ExemplarStore{k: k}
}

// Exemplars is the process-wide store fed by t3.RecordObservedPlan and
// read by cmd/t3serve's /debug/worst.
var Exemplars = NewExemplarStore(DefaultExemplars)

// Offer scores one prediction/measurement pair and captures the plan if it
// ranks among the k worst. The common case — an accurate prediction while
// the store is full of worse ones — costs one atomic load and no
// allocation; the plan is encoded only after the offer qualifies.
func (s *ExemplarStore) Offer(root *plan.Node, mode plan.CardMode, predictedNs, actualNs int64, now time.Time) {
	if root == nil || predictedNs <= 0 || actualNs <= 0 {
		return
	}
	p, a := float64(predictedNs), float64(actualNs)
	q := p / a
	if q < 1 {
		q = a / p
	}
	if math.IsInf(q, 0) || math.IsNaN(q) {
		return
	}
	if fb := s.floor.Load(); fb != 0 && q <= math.Float64frombits(fb) {
		return // full store, worse entries everywhere — the hot reject
	}

	key := wire.PlanKey(root, mode)
	fp := KeyFingerprint(key)

	s.mu.Lock()
	defer s.mu.Unlock()

	// Dedup: a known plan only advances to a worse score.
	for i := range s.entries {
		if s.entries[i].Fingerprint == fp {
			if q <= s.entries[i].QError {
				return
			}
			s.entries[i].QError = q
			s.entries[i].PredictedNs = predictedNs
			s.entries[i].ActualNs = actualNs
			s.entries[i].AtUnixNs = now.UnixNano()
			s.resort()
			return
		}
	}
	if len(s.entries) >= s.k && q <= s.entries[len(s.entries)-1].QError {
		return // racing offers can slip past the floor; re-check under lock
	}
	e := Exemplar{
		Fingerprint: fp,
		Mode:        uint8(mode),
		QError:      q,
		PredictedNs: predictedNs,
		ActualNs:    actualNs,
		AtUnixNs:    now.UnixNano(),
		Frame:       wire.AppendFrame(nil, root, mode),
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, e)
	} else {
		s.entries[len(s.entries)-1] = e
	}
	s.resort()
}

// resort restores descending q-error order and refreshes the floor.
// Callers hold s.mu.
func (s *ExemplarStore) resort() {
	sort.Slice(s.entries, func(i, j int) bool {
		return s.entries[i].QError > s.entries[j].QError
	})
	if len(s.entries) >= s.k {
		s.floor.Store(math.Float64bits(s.entries[len(s.entries)-1].QError))
	}
}

// Snapshot returns a copy of the stored exemplars, worst first. Frames are
// aliased, not copied — they are write-once after capture.
func (s *ExemplarStore) Snapshot() []Exemplar {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exemplar, len(s.entries))
	copy(out, s.entries)
	return out
}

// Frame returns the request frame of the rank-th worst exemplar (0-based),
// or nil if out of range.
func (s *ExemplarStore) Frame(rank int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rank < 0 || rank >= len(s.entries) {
		return nil
	}
	return s.entries[rank].Frame
}

// Len returns the number of stored exemplars.
func (s *ExemplarStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
