package obs

// Built-in T3 metrics, registered with Default. Handles are package-level
// pointers so instrumented code (t3.Model, internal/gbdt, internal/engine)
// records without any lookup. Names follow Prometheus conventions:
// *_total for counters, *_seconds for duration histograms.
var (
	// Prediction serving (t3.Model, packed tier).

	// Predictions counts single-plan predictions served by the packed tier.
	Predictions = Default.NewCounter("t3_predictions_total",
		"Single-plan predictions served (packed tier).")
	// PredictLatency is the end-to-end single-prediction latency:
	// decompose + featurize + tree evaluation + per-pipeline sum.
	PredictLatency = Default.NewHistogram("t3_predict_latency_seconds",
		"End-to-end single-plan prediction latency (packed tier).", UnitNanoseconds)
	// PredictInterpreted is the same latency on the interpreted tier
	// (Model.PredictInterpreted), the slow tier of Table 1.
	PredictInterpreted = Default.NewHistogram("t3_predict_interpreted_seconds",
		"Single-plan prediction latency on the interpreted tier.", UnitNanoseconds)

	// Per-stage spans of the predict hot path, sampled 1-in-8 (see
	// StageSampler) so the extra clock reads stay off most predictions.

	// PredictDecompose times plan → pipeline decomposition.
	PredictDecompose = Default.NewHistogram("t3_predict_stage_decompose_seconds",
		"Sampled latency of the plan-decomposition stage.", UnitNanoseconds)
	// PredictFeaturize times pipeline → feature-vector encoding.
	PredictFeaturize = Default.NewHistogram("t3_predict_stage_featurize_seconds",
		"Sampled latency of the featurization stage.", UnitNanoseconds)
	// PredictTreeEval times packed-ensemble evaluation and the
	// per-pipeline sum.
	PredictTreeEval = Default.NewHistogram("t3_predict_stage_treeeval_seconds",
		"Sampled latency of the tree-evaluation stage.", UnitNanoseconds)
	// StageSampler gates the per-stage spans above.
	StageSampler = NewSampler(8)

	// Batched prediction.

	// PredictBatches counts PredictBatch/PredictBatchInto calls.
	PredictBatches = Default.NewCounter("t3_predict_batches_total",
		"Batched prediction calls.")
	// PredictBatchSize is the distribution of batch sizes (plans per call).
	PredictBatchSize = Default.NewHistogram("t3_predict_batch_size",
		"Plans per batched prediction call.", UnitCount)

	// Online accuracy drift: q-errors between predictions and measured
	// executions of the same plan (RecordObserved in package t3).

	// QErrorObservations counts prediction/execution pairs scored.
	QErrorObservations = Default.NewCounter("t3_qerror_observations_total",
		"Prediction/execution pairs scored for drift.")
	// QErrorDrift is the q-error distribution of those pairs; a drifting
	// workload shows up as mass moving into higher buckets.
	QErrorDrift = Default.NewHistogram("t3_qerror_drift",
		"Q-error of predictions vs measured execution times.", UnitMilli)

	// GBDT training (internal/gbdt).

	// TrainSessions counts Train calls.
	TrainSessions = Default.NewCounter("t3_train_sessions_total",
		"GBDT training runs.")
	// TrainRounds counts boosting rounds across all training runs.
	TrainRounds = Default.NewCounter("t3_train_rounds_total",
		"Boosting rounds trained.")
	// TrainRoundTime is per-round wall time (gradients + grow + update).
	TrainRoundTime = Default.NewHistogram("t3_train_round_seconds",
		"Wall time per boosting round.", UnitNanoseconds)
	// TrainGrowTime is per-round tree-growing time (histogram builds and
	// split search), the dominant cost inside a round.
	TrainGrowTime = Default.NewHistogram("t3_train_grow_seconds",
		"Wall time per tree grow (histogram build + split search).", UnitNanoseconds)
	// TrainRowsPerSec is the most recent training throughput:
	// rows × rounds / wall time.
	TrainRowsPerSec = Default.NewGauge("t3_train_rows_per_second",
		"Training throughput of the last Train call (rows x rounds / s).")

	// Label collection (internal/workload), the parallel runner producing
	// the (plan, pipeline-time) training data.

	// CollectQueries counts queries fully collected (analyze + timing runs).
	CollectQueries = Default.NewCounter("t3_collect_queries_total",
		"Queries executed by the label-collection runner.")
	// CollectQueryTime is the per-query collection latency (analyze run plus
	// all timing runs).
	CollectQueryTime = Default.NewHistogram("t3_collect_query_seconds",
		"Wall time to collect one query's labels.", UnitNanoseconds)
	// CollectThroughput is the most recent collection throughput in
	// queries per second across all workers.
	CollectThroughput = Default.NewGauge("t3_collect_queries_per_second",
		"Throughput of the last label-collection run.")

	// Serving tier (internal/serve, internal/predcache, internal/coalesce):
	// the binary wire endpoints, the fingerprint-keyed prediction cache, and
	// the request coalescer in front of batched prediction.

	// ServeBinRequests counts binary-protocol predict requests
	// (/predict.bin and the raw TCP listener).
	ServeBinRequests = Default.NewCounter("t3_serve_bin_requests_total",
		"Binary-protocol predict requests served.")
	// ServeBinErrors counts binary-protocol requests answered with an error
	// frame.
	ServeBinErrors = Default.NewCounter("t3_serve_bin_errors_total",
		"Binary-protocol predict requests answered with an error.")
	// ServeBinLatency is the server-side handling latency of binary
	// predict requests (decode + cache/coalesce + respond).
	ServeBinLatency = Default.NewHistogram("t3_serve_bin_request_seconds",
		"Server-side binary predict request latency.", UnitNanoseconds)
	// ServeCacheHits counts prediction-cache hits.
	ServeCacheHits = Default.NewCounter("t3_serve_cache_hits_total",
		"Prediction-cache hits.")
	// ServeCacheMisses counts prediction-cache misses.
	ServeCacheMisses = Default.NewCounter("t3_serve_cache_misses_total",
		"Prediction-cache misses.")
	// ServeCacheEvictions counts LRU evictions from the prediction cache.
	ServeCacheEvictions = Default.NewCounter("t3_serve_cache_evictions_total",
		"Prediction-cache LRU evictions.")
	// ServeCacheInvalidations counts whole-cache invalidations (model swaps).
	ServeCacheInvalidations = Default.NewCounter("t3_serve_cache_invalidations_total",
		"Prediction-cache invalidations (model swaps).")
	// ServeInflight is the number of requests currently being handled by
	// the serving tier (HTTP handlers plus in-flight TCP wire requests).
	ServeInflight = Default.NewGauge("t3_serve_inflight_requests",
		"Requests currently being handled by the serving tier.")
	// ServeCoalesceBatches counts coalesced dispatches into batched
	// prediction.
	ServeCoalesceBatches = Default.NewCounter("t3_serve_coalesce_batches_total",
		"Coalesced prediction dispatches.")
	// ServeCoalesceBatchSize is the distribution of coalesced batch sizes
	// (requests per dispatch); mass above 1 is amortization won.
	ServeCoalesceBatchSize = Default.NewHistogram("t3_serve_coalesce_batch_size",
		"Requests per coalesced prediction dispatch.", UnitCount)

	// Join-order enumeration (internal/joinorder): DPsize driven by the
	// T3 cost model, scalar or level-batched.

	// JoinorderDPSteps counts candidate (build, probe) pairs costed by the
	// DP enumeration loop.
	JoinorderDPSteps = Default.NewCounter("t3_joinorder_dp_steps_total",
		"Candidate join pairs costed by DPsize enumeration.")
	// JoinorderModelCalls counts model predictions issued while enumerating.
	JoinorderModelCalls = Default.NewCounter("t3_joinorder_model_calls_total",
		"Model predictions issued by join-order enumeration.")
	// JoinorderBatchSize is the distribution of batched-prediction flush
	// sizes (feature rows per PredictBatchInto call) in the level-batched
	// enumerator.
	JoinorderBatchSize = Default.NewHistogram("t3_joinorder_batch_size",
		"Feature rows per batched planner prediction flush.", UnitCount)
	// JoinorderEnumTime is the wall time of one full DPsize enumeration.
	JoinorderEnumTime = Default.NewHistogram("t3_joinorder_enum_seconds",
		"Wall time per join-order enumeration.", UnitNanoseconds)

	// Pipeline execution (internal/engine/exec), the ground-truth side of
	// drift accounting.

	// ExecPlans counts plans executed.
	ExecPlans = Default.NewCounter("t3_exec_plans_total",
		"Plans executed by the in-memory engine.")
	// ExecPipelines counts pipelines executed.
	ExecPipelines = Default.NewCounter("t3_exec_pipelines_total",
		"Pipelines executed by the in-memory engine.")
	// ExecPipelineTime is per-pipeline wall time.
	ExecPipelineTime = Default.NewHistogram("t3_exec_pipeline_seconds",
		"Wall time per executed pipeline.", UnitNanoseconds)
	// ExecTuples counts source tuples pushed into pipelines.
	ExecTuples = Default.NewCounter("t3_exec_tuples_total",
		"Source tuples pushed through executed pipelines.")
	// ExecParallelPipelines counts pipelines executed morsel-parallel.
	ExecParallelPipelines = Default.NewCounter("t3_exec_parallel_pipelines_total",
		"Pipelines executed with morsel-driven parallelism.")
	// ExecMorsels counts source partitions dispatched to the worker pool.
	ExecMorsels = Default.NewCounter("t3_exec_morsels_total",
		"Morsel partitions dispatched by parallel pipelines.")
	// ExecPartitionTime is the wall time of one morsel partition (scan
	// through partial build), across all workers.
	ExecPartitionTime = Default.NewHistogram("t3_exec_partition_seconds",
		"Wall time per morsel partition of a parallel pipeline.", UnitNanoseconds)
	// ExecMergeTime is the driver-side ordered merge of partition partials.
	ExecMergeTime = Default.NewHistogram("t3_exec_merge_seconds",
		"Wall time merging partition partials of a parallel pipeline.", UnitNanoseconds)
)
