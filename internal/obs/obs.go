// Package obs is the repository's dependency-free observability layer:
// atomic counters and gauges, fixed-bucket latency histograms, and a
// registry that exports everything as Prometheus text, a JSON snapshot, or
// a human-readable dump.
//
// The design constraint is the prediction hot path: T3 serves a single
// prediction in ~4 µs with zero heap allocations (see DESIGN.md), so every
// record operation here is a handful of atomic adds on preallocated
// storage — no locks, no maps, no interface boxing, no allocation. Metric
// handles are package-level pointers resolved at init time (see
// metrics.go), so instrumented code never performs a name lookup.
//
// Per-stage timing on the hot path is additionally gated behind a Sampler
// so that the clock reads (two time.Now calls per stage) are paid only on
// a small fraction of predictions; the always-on whole-prediction counter
// and latency histogram cost two clock reads and four atomic adds total.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Export unit scales: the value of one raw histogram unit in export units.
// Durations are recorded in nanoseconds and exported in seconds (the
// Prometheus convention); q-errors are recorded in fixed-point milli-units
// and exported as plain ratios; plain counts are recorded as themselves.
const (
	// UnitNanoseconds marks a histogram recording nanoseconds, exported as
	// seconds.
	UnitNanoseconds = 1e-9
	// UnitMilli marks a histogram recording 1/1000ths, exported as ratios
	// (used for q-error, where 1.0 is a perfect prediction).
	UnitMilli = 1e-3
	// UnitCount marks a histogram recording plain counts (batch sizes).
	UnitCount = 1.0
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// NewCounter creates an unregistered counter (see Registry.NewCounter).
func NewCounter(name, help string) *Counter { return &Counter{name: name, help: help} }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Label is one constant metric label, attached at registration time (used
// for info-style gauges like t3_build_info; high-cardinality labels are
// deliberately unsupported).
type Label struct{ Name, Value string }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	help   string
	labels string // pre-rendered {k="v",...} sample suffix, "" when unlabeled
}

// NewGauge creates an unregistered gauge (see Registry.NewGauge).
func NewGauge(name, help string) *Gauge { return &Gauge{name: name, help: help} }

// NewLabeledGauge creates an unregistered gauge whose samples carry the
// given constant labels.
func NewLabeledGauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{name: name, help: help, labels: renderLabels(labels)}
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// sampleName returns the exposition sample name: the metric name plus the
// pre-rendered constant-label suffix.
func (g *Gauge) sampleName() string { return g.name + g.labels }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta — a CAS loop on the float bits, so concurrent
// Add/Inc/Dec never lose updates.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Sampler admits one in every N calls (N rounded up to a power of two), so
// hot paths can bound the cost of optional instrumentation. Sample is one
// atomic add; the admission pattern is deterministic (every N-th call),
// which keeps sampled stage timings representative under steady load.
type Sampler struct {
	n    atomic.Uint64
	mask uint64
}

// NewSampler returns a sampler admitting one in every `every` calls,
// rounded up to the next power of two. every <= 1 admits every call.
func NewSampler(every int) *Sampler {
	if every <= 1 {
		return &Sampler{}
	}
	n := uint64(1)
	for n < uint64(every) {
		n <<= 1
	}
	return &Sampler{mask: n - 1}
}

// Sample reports whether this call is admitted.
func (s *Sampler) Sample() bool { return s.n.Add(1)&s.mask == 0 }

// Registry holds an ordered set of metrics and renders them for export.
// Registration takes a lock; recording never does.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	onExport []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry all built-in T3 metrics register
// with (see metrics.go). cmd/t3serve exposes it at /metrics.
var Default = NewRegistry()

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := NewCounter(name, help)
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// NewLabeledGauge creates and registers a gauge with constant labels.
func (r *Registry) NewLabeledGauge(name, help string, labels ...Label) *Gauge {
	g := NewLabeledGauge(name, help, labels...)
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// OnExport registers a hook that runs at the start of every export walk
// (WritePrometheus, Snapshot, DumpText) — the place to refresh gauges that
// sample process state, like the Go runtime stats.
func (r *Registry) OnExport(fn func()) {
	r.mu.Lock()
	r.onExport = append(r.onExport, fn)
	r.mu.Unlock()
}

// runExportHooks invokes the registered export hooks outside the lock.
func (r *Registry) runExportHooks() {
	r.mu.Lock()
	hooks := append([]func(){}, r.onExport...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// NewHistogram creates and registers a histogram. unit is one of the Unit*
// constants: the value of one recorded raw unit in export units.
func (r *Registry) NewHistogram(name, help string, unit float64) *Histogram {
	h := NewHistogram(name, help, unit)
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// metrics returns stable copies of the metric lists for export walks.
func (r *Registry) metrics() ([]*Counter, []*Gauge, []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Counter(nil), r.counters...),
		append([]*Gauge(nil), r.gauges...),
		append([]*Histogram(nil), r.hists...)
}
