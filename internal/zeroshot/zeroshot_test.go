package zeroshot

import (
	"math"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/qerror"
	"t3/internal/testutil"
)

func TestNodeFeaturesShape(t *testing.T) {
	c := testutil.SmallCorpus(t)
	b := c.AllTrain()[0]
	b.Query.Root.Walk(func(n *plan.Node) {
		f := nodeFeatures(n, plan.TrueCards, nil)
		if len(f) != NumNodeFeatures {
			t.Fatalf("feature dim %d, want %d", len(f), NumNodeFeatures)
		}
		// One-hot exactly one operator bit.
		ones := 0
		for i := 0; i < plan.NumOpTypes; i++ {
			if f[i] == 1 {
				ones++
			} else if f[i] != 0 {
				t.Fatalf("one-hot slot %d has value %v", i, f[i])
			}
		}
		if ones != 1 {
			t.Fatalf("one-hot has %d ones", ones)
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d is %v", i, v)
			}
		}
	})
}

func TestZeroShotLearns(t *testing.T) {
	c := testutil.SmallCorpus(t)
	train := c.AllTrain()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	cfg.Seed = 3
	var losses []float64
	cfg.Progress = func(epoch int, loss float64) { losses = append(losses, loss) }
	m := Train(train, plan.TrueCards, cfg)

	if losses[len(losses)-1] >= losses[0]*0.7 {
		t.Errorf("training loss barely improved: %v -> %v", losses[0], losses[len(losses)-1])
	}

	// Zero-shot accuracy on held-out TPC-DS: sane median q-error. The NN
	// baseline is allowed to be worse than T3, but must beat wild guessing.
	var es []float64
	for _, b := range c.AllTest() {
		pred := m.PredictSeconds(b.Query.Root, plan.TrueCards)
		es = append(es, qerror.QError(pred, b.MedianTotal().Seconds()))
	}
	s := qerror.Summarize(es)
	t.Logf("zero-shot NN TPC-DS q-error: p50=%.2f p90=%.2f avg=%.2f", s.P50, s.P90, s.Avg)
	if s.P50 > 8 {
		t.Errorf("NN median q-error %.2f — failed to learn anything", s.P50)
	}
}

func TestPredictionPositive(t *testing.T) {
	c := testutil.SmallCorpus(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m := Train(c.AllTrain()[:100], plan.TrueCards, cfg)
	for _, b := range c.AllTest()[:20] {
		p := m.PredictSeconds(b.Query.Root, plan.TrueCards)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v not a positive finite duration", p)
		}
	}
}
