// Package zeroshot implements a plan-structured neural-network cost model in
// the spirit of the Zero Shot models of Hilprecht & Binnig — the strongest
// accuracy baseline the paper compares against (Figures 1, 10, 12).
//
// Every plan node is featurized (operator one-hot, log-scaled cardinalities,
// tuple widths, predicate statistics); a shared encoder MLP combines each
// node's features with the sum of its children's embeddings bottom-up; a
// head MLP maps the root embedding to a log-transformed runtime. Like the
// original, it is transferable across database instances because all inputs
// are schema-agnostic ("transferable features"). And like all neural
// predictors, its inference latency is orders of magnitude higher than a
// compiled decision tree — which is the paper's point.
package zeroshot

import (
	"math"
	"math/rand"

	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/nn"
)

// NumNodeFeatures is the per-node feature dimension.
const NumNodeFeatures = plan.NumOpTypes + 7

// nodeFeatures fills the transferable feature vector of one plan node.
func nodeFeatures(n *plan.Node, mode plan.CardMode, out []float64) []float64 {
	if out == nil {
		out = make([]float64, NumNodeFeatures)
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	out[int(n.Op)] = 1
	b := plan.NumOpTypes
	out[b+0] = math.Log10(n.OutCard.Get(mode) + 1)
	out[b+1] = math.Log10(n.InCard(mode) + 1)
	out[b+2] = math.Log10(n.RightCard(mode) + 1)
	out[b+3] = float64(n.OutWidth()) / 64
	out[b+4] = float64(len(n.Predicates))
	sel := 1.0
	for i := range n.PredSel {
		sel *= n.PredSel[i].Get(mode)
	}
	out[b+5] = sel
	nc := 0
	if n.Left != nil {
		nc++
	}
	if n.Right != nil {
		nc++
	}
	out[b+6] = float64(nc)
	return out
}

// Model is a trained zero-shot cost model.
type Model struct {
	Hidden int
	Enc    *nn.MLP // (NumNodeFeatures + Hidden) -> Hidden
	Head   *nn.MLP // Hidden -> 1
}

// TrainConfig configures training.
type TrainConfig struct {
	Hidden int
	Epochs int
	Batch  int
	LR     float64
	Seed   int64
	// Progress, when non-nil, receives the epoch loss.
	Progress func(epoch int, loss float64)
}

// DefaultTrainConfig returns a configuration balancing accuracy and training
// time for corpora of a few thousand queries. The paper's Zero Shot model is
// far larger (50 ms inference); this pure-Go substitute keeps the latency
// contrast directional while remaining trainable in minutes.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Hidden: 64, Epochs: 40, Batch: 16, LR: 1e-3}
}

// nodeState records one node's forward pass for backprop.
type nodeState struct {
	n        *plan.Node
	feat     []float64
	input    []float64 // feat ++ childSum
	trace    *nn.Trace
	emb      []float64
	children []int // indices into the recorder's states
}

// recorder captures the recursive forward pass in topological order
// (children before parents).
type recorder struct {
	states []nodeState
}

// forward embeds the subtree rooted at n and returns its state index.
func (m *Model) forward(n *plan.Node, mode plan.CardMode, rec *recorder) int {
	var children []int
	childSum := make([]float64, m.Hidden)
	if n.Left != nil {
		ci := m.forward(n.Left, mode, rec)
		children = append(children, ci)
		for i, v := range rec.states[ci].emb {
			childSum[i] += v
		}
	}
	if n.Right != nil {
		ci := m.forward(n.Right, mode, rec)
		children = append(children, ci)
		for i, v := range rec.states[ci].emb {
			childSum[i] += v
		}
	}
	feat := nodeFeatures(n, mode, nil)
	input := make([]float64, 0, len(feat)+m.Hidden)
	input = append(input, feat...)
	input = append(input, childSum...)
	trace, emb := m.Enc.Forward(input)
	rec.states = append(rec.states, nodeState{
		n: n, feat: feat, input: input, trace: trace, emb: emb, children: children,
	})
	return len(rec.states) - 1
}

// infer embeds a subtree without recording traces (prediction path).
func (m *Model) infer(n *plan.Node, mode plan.CardMode) []float64 {
	childSum := make([]float64, m.Hidden)
	if n.Left != nil {
		for i, v := range m.infer(n.Left, mode) {
			childSum[i] += v
		}
	}
	if n.Right != nil {
		for i, v := range m.infer(n.Right, mode) {
			childSum[i] += v
		}
	}
	input := make([]float64, 0, NumNodeFeatures+m.Hidden)
	input = append(input, nodeFeatures(n, mode, nil)...)
	input = append(input, childSum...)
	return m.Enc.Infer(input)
}

// PredictSeconds predicts the query execution time in seconds.
func (m *Model) PredictSeconds(root *plan.Node, mode plan.CardMode) float64 {
	emb := m.infer(root, mode)
	t := m.Head.Infer(emb)[0]
	return benchdata.InverseTarget(t)
}

// Train fits the model on benchmarked queries with targets
// -log10(median total runtime).
func Train(benched []*benchdata.BenchedQuery, mode plan.CardMode, cfg TrainConfig) *Model {
	if cfg.Hidden == 0 {
		cfg = DefaultTrainConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	m := &Model{
		Hidden: cfg.Hidden,
		Enc:    nn.NewMLP(rng, NumNodeFeatures+cfg.Hidden, cfg.Hidden, cfg.Hidden),
		Head:   nn.NewMLP(rng, cfg.Hidden, cfg.Hidden, 1),
	}
	targets := make([]float64, len(benched))
	for i, b := range benched {
		targets[i] = benchdata.TargetTransform(b.MedianTotal().Seconds())
	}

	order := rng.Perm(len(benched))
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		inBatch := 0
		for _, qi := range order {
			b := benched[qi]
			rec := &recorder{}
			rootIdx := m.forward(b.Query.Root, mode, rec)
			headTrace, out := m.Head.Forward(rec.states[rootIdx].emb)
			diff := out[0] - targets[qi]
			epochLoss += 0.5 * diff * diff

			// Backward: head, then nodes in reverse topological order.
			embGrads := make([][]float64, len(rec.states))
			embGrads[rootIdx] = m.Head.Backward(headTrace, []float64{diff})
			for i := len(rec.states) - 1; i >= 0; i-- {
				g := embGrads[i]
				if g == nil {
					continue
				}
				dIn := m.Enc.Backward(rec.states[i].trace, g)
				// The trailing Hidden entries of the encoder input are the
				// summed child embeddings; route their gradient to each
				// child.
				childGrad := dIn[NumNodeFeatures:]
				for _, ci := range rec.states[i].children {
					if embGrads[ci] == nil {
						embGrads[ci] = append([]float64(nil), childGrad...)
					} else {
						for k, v := range childGrad {
							embGrads[ci][k] += v
						}
					}
				}
			}
			inBatch++
			if inBatch >= cfg.Batch {
				step++
				m.Enc.Adam(cfg.LR, step)
				m.Head.Adam(cfg.LR, step)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			step++
			m.Enc.Adam(cfg.LR, step)
			m.Head.Adam(cfg.LR, step)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(len(benched)))
		}
	}
	return m
}
