//go:build !race

package joinorder

// raceEnabled reports whether the race detector is active; allocation-count
// guards skip under it because instrumentation inflates counts.
const raceEnabled = false
