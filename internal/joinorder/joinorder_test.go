package joinorder

import (
	"math/bits"
	"testing"

	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/feature"
	"t3/internal/gbdt"
	"t3/internal/treec"
	"t3/internal/workload"
)

func imdbInst(t *testing.T) *workload.Instance {
	t.Helper()
	return workload.MustGenerate(workload.IMDBSpec("imdb_jo", 0.01, 99))
}

func TestDPSizeCoutFindsValidTrees(t *testing.T) {
	in := imdbInst(t)
	specs := workload.JOBJoinSpecs(in)
	tested := 0
	for _, sp := range specs {
		if len(sp.Rels) > 5 {
			continue
		}
		oracle := NewExactOracle(in, sp)
		cm := NewCout(oracle)
		res, err := DPSize(sp, cm)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if res.Tree.Rels() != uint64(1)<<uint(len(sp.Rels))-1 {
			t.Fatalf("%s: tree %s does not cover all relations", sp.Name, res.Tree)
		}
		if res.ModelCalls <= 0 {
			t.Fatalf("%s: no model calls recorded", sp.Name)
		}
		// The optimized tree must produce the same result as the default
		// left-deep plan.
		p1 := TreeToPlan(in, sp, res.Tree)
		r1, err := exec.Run(p1, false)
		if err != nil {
			t.Fatalf("%s: optimized plan failed: %v", sp.Name, err)
		}
		p2 := sp.LeftDeepPlan(in)
		r2, err := exec.Run(p2, false)
		if err != nil {
			t.Fatal(err)
		}
		c1 := r1.Output.Cols[0].Ints[0]
		c2 := r2.Output.Cols[0].Ints[0]
		if c1 != c2 {
			t.Fatalf("%s: optimized count %d != left-deep count %d", sp.Name, c1, c2)
		}
		tested++
		if tested >= 8 {
			break
		}
	}
	if tested == 0 {
		t.Fatal("no specs tested")
	}
}

func TestExactOracleConsistentWithExecution(t *testing.T) {
	in := imdbInst(t)
	sp := workload.JOBJoinSpecs(in)[0]
	oracle := NewExactOracle(in, sp)
	full := uint64(1)<<uint(len(sp.Rels)) - 1
	card := oracle.Card(full)

	res, err := exec.Run(sp.PlanForOrderNoAgg(in, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	if card != float64(res.Rows) {
		t.Fatalf("oracle %v != executed %d", card, res.Rows)
	}
	// Memoized second call returns the same.
	if oracle.Card(full) != card {
		t.Fatal("memoization changed the answer")
	}
}

func TestEstOracleMonotoneOnSingleRels(t *testing.T) {
	in := imdbInst(t)
	sp := workload.JOBJoinSpecs(in)[1]
	oracle := NewEstOracle(in, sp)
	for r := range sp.Rels {
		c := oracle.Card(1 << uint(r))
		if c < 0 {
			t.Fatalf("negative estimate for rel %d", r)
		}
		tbl := in.Table(sp.Rels[r].Table)
		if c > float64(tbl.NumRows())+1e-9 {
			t.Fatalf("rel %d estimate %v exceeds table size %d", r, c, tbl.NumRows())
		}
	}
}

func TestGreedyProducesConnectedTree(t *testing.T) {
	in := imdbInst(t)
	specs := workload.JOBJoinSpecs(in)
	for _, sp := range specs[:10] {
		oracle := NewEstOracle(in, sp)
		tree, err := Greedy(sp, oracle)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if bits.OnesCount64(tree.Rels()) != len(sp.Rels) {
			t.Fatalf("%s: greedy tree misses relations", sp.Name)
		}
		// Must be executable (no cross products given adjacency-driven
		// merging).
		if _, err := exec.Run(TreeToPlan(in, sp, tree), false); err != nil {
			t.Fatalf("%s: greedy plan failed: %v", sp.Name, err)
		}
	}
}

// tinyT3 trains a minimal T3-shaped model on synthetic pipeline vectors so
// the cost model has something to call.
func tinyT3(t *testing.T) (*treec.Flat, *feature.Registry) {
	t.Helper()
	reg := feature.NewDefaultRegistry()
	n := 500
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, reg.NumFeatures())
		v[0] = float64(i % 7)
		v[1] = float64(i)
		xs[i] = v
		ys[i] = benchdata.TargetTransform(1e-8 * float64(1+i%7))
	}
	p := gbdt.DefaultParams()
	p.NumRounds = 10
	p.ValidationFraction = 0
	m, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return treec.Flatten(m), reg
}

func TestDPSizeWithT3CostModel(t *testing.T) {
	in := imdbInst(t)
	flat, reg := tinyT3(t)
	specs := workload.JOBJoinSpecs(in)
	tested := 0
	for _, sp := range specs {
		if len(sp.Rels) > 4 {
			continue
		}
		oracle := NewExactOracle(in, sp)
		cm := NewT3Cost(flat, reg, in, sp, oracle)
		res, err := DPSize(sp, cm)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		coutRes, err := DPSize(sp, NewCout(oracle))
		if err != nil {
			t.Fatal(err)
		}
		// §5.5: T3 prices two pipelines per candidate but memoizes the open
		// side, so calls land strictly between Cout's one-per-candidate and
		// the un-memoized two-per-candidate. (TestTotalMemoizationCutsCalls
		// pins the memo's saving against the NoMemo baseline.)
		if res.ModelCalls <= coutRes.ModelCalls || res.ModelCalls > 2*coutRes.ModelCalls {
			t.Errorf("%s: T3 calls %d outside (%d, %d]", sp.Name, res.ModelCalls, coutRes.ModelCalls, 2*coutRes.ModelCalls)
		}
		// The chosen tree must execute correctly.
		p := TreeToPlan(in, sp, res.Tree)
		r, err := exec.Run(p, false)
		if err != nil {
			t.Fatalf("%s: T3-chosen plan failed: %v", sp.Name, err)
		}
		ref, err := exec.Run(sp.LeftDeepPlan(in), false)
		if err != nil {
			t.Fatal(err)
		}
		if r.Output.Cols[0].Ints[0] != ref.Output.Cols[0].Ints[0] {
			t.Fatalf("%s: result mismatch across join orders", sp.Name)
		}
		tested++
		if tested >= 5 {
			break
		}
	}
	if tested == 0 {
		t.Fatal("no specs tested")
	}
}
