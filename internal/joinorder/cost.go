package joinorder

import (
	"math"

	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/feature"
	"t3/internal/workload"
)

// CoutModel is the Cout cost function of Cluet & Moerkotte (Eq. 3 of the
// paper): 0 for leaves, |T| + Cout(T1) + Cout(T2) for joins. Computable with
// three additions per DP step.
type CoutModel struct {
	oracle Oracle
	calls  int
}

// NewCout builds the Cout model over an oracle.
func NewCout(oracle Oracle) *CoutModel { return &CoutModel{oracle: oracle} }

// Name identifies the model.
func (c *CoutModel) Name() string { return "Cout" }

// Leaf costs nothing.
func (c *CoutModel) Leaf(rel int) State { return float64(0) }

// Join adds the new intermediate's cardinality.
func (c *CoutModel) Join(build, probe State, buildSet, probeSet uint64) State {
	c.calls++
	return build.(float64) + probe.(float64) + c.oracle.Card(buildSet|probeSet)
}

// Total returns the accumulated cost.
func (c *CoutModel) Total(s State) float64 { return s.(float64) }

// Calls reports model invocations.
func (c *CoutModel) Calls() int { return c.calls }

// Predictor is the scalar evaluation surface shared by the compiled tree
// tiers: both *treec.Flat and *treec.Packed satisfy it, so the cost model can
// run on either tier without caring which.
type Predictor interface {
	Predict(v []float64) float64
}

// scaleSeconds converts a raw model score (the transformed per-tuple target)
// into pipeline seconds for the given source cardinality. Both the scalar and
// the batched costing paths share this exact function, which is part of the
// bit-identical determinism contract between them.
func scaleSeconds(raw, srcCard float64) float64 {
	if srcCard < 1 {
		srcCard = 1
	}
	return benchdata.InverseTarget(raw) * srcCard
}

// t3State is the per-subtree memo of the T3 cost model: the total predicted
// time of all closed pipelines plus the feature vector of the still-open
// pipeline (§5.5: "we cache the cost for all other pipelines that already
// finished in the subtrees").
type t3State struct {
	closedSeconds float64
	openVec       []float64 // feature vector of the open pipeline so far
	openSrcCard   float64   // scan cardinality driving the open pipeline
	card          float64   // output cardinality of the subtree
	width         float64   // approximate tuple width of the subtree output
	// openPred memoizes the open pipeline's predicted seconds. States are
	// immutable once created — extending the pipeline builds a new state —
	// so the memo can never go stale; it is simply computed on first use.
	openPred   float64
	openPredOK bool
}

// T3CostModel prices join trees with a trained T3 model. Every DP step
// makes at most two model calls: one for the build side's now-closed
// pipeline, and one — memoized per state — for the extended open pipeline
// the first time Total compares it.
type T3CostModel struct {
	pred   Predictor
	feat   *t3feat
	oracle Oracle
	calls  int

	// NoMemo disables the open-pipeline prediction memo, restoring the
	// historical behaviour of re-running the model on every Total call. It
	// exists only as the benchmark baseline for the batched path; leave it
	// false everywhere else.
	NoMemo bool
}

// NewT3Cost builds the T3 cost model. pred is a compiled tier (*treec.Flat or
// *treec.Packed) and reg its registry; the oracle supplies subset
// cardinalities.
func NewT3Cost(pred Predictor, reg *feature.Registry, inst *workload.Instance, spec *workload.JoinSpec, oracle Oracle) *T3CostModel {
	return &T3CostModel{pred: pred, feat: newT3Feat(reg, inst, spec), oracle: oracle}
}

// Name identifies the model.
func (m *T3CostModel) Name() string { return "T3" }

// predict evaluates the compiled model for one pipeline vector and scales to
// seconds.
func (m *T3CostModel) predict(vec []float64, srcCard float64) float64 {
	m.calls++
	return scaleSeconds(m.pred.Predict(vec), srcCard)
}

// Leaf starts an open pipeline with the relation's scan stage.
func (m *T3CostModel) Leaf(rel int) State {
	vec := make([]float64, m.feat.reg.NumFeatures())
	srcCard, card, width := m.feat.leafInto(vec, rel)
	return &t3State{
		openVec:     vec,
		openSrcCard: srcCard,
		card:        card,
		width:       width,
	}
}

// Join closes the build side's pipeline with a build stage (one model call)
// and extends the probe side's open pipeline with a probe stage (the second
// model call happens lazily when Total first compares the new state).
func (m *T3CostModel) Join(build, probe State, buildSet, probeSet uint64) State {
	b := build.(*t3State)
	p := probe.(*t3State)

	// Close the build pipeline: append the hash-join build stage.
	bvec := make([]float64, len(b.openVec))
	m.feat.closeBuildInto(bvec, b.openVec, b.card, b.openSrcCard, b.width)
	closed := b.closedSeconds + p.closedSeconds + m.predict(bvec, b.openSrcCard)

	// Extend the probe pipeline.
	outCard := m.oracle.Card(buildSet | probeSet)
	pvec := make([]float64, len(p.openVec))
	m.feat.extendProbeInto(pvec, p.openVec, b.card, b.width, p.card, p.openSrcCard, p.width, outCard)
	return &t3State{
		closedSeconds: closed,
		openVec:       pvec,
		openSrcCard:   p.openSrcCard,
		card:          outCard,
		width:         p.width + b.width,
	}
}

// Total prices the state: closed pipelines plus the current open pipeline.
// The open-pipeline prediction is computed once per state and memoized —
// states are immutable, so repeated Total calls (the DP compares every
// candidate against the running best) are lookups, not model runs.
func (m *T3CostModel) Total(s State) float64 {
	st := s.(*t3State)
	if m.NoMemo {
		return st.closedSeconds + m.predict(st.openVec, st.openSrcCard)
	}
	if !st.openPredOK {
		st.openPred = m.predict(st.openVec, st.openSrcCard)
		st.openPredOK = true
	}
	return st.closedSeconds + st.openPred
}

// Calls reports model invocations.
func (m *T3CostModel) Calls() int { return m.calls }

// t3feat translates join-tree state transitions into T3 feature-vector
// edits. It is shared verbatim by the scalar cost model and the level-batched
// enumerator, so the two paths produce bit-identical vectors by construction.
type t3feat struct {
	reg  *feature.Registry
	rels *specEstimates

	// cached registry locations
	locScanCount, locScanCard, locScanOutPct                      int
	locBuildCount, locBuildCard, locBuildSize, locBuildPct        int
	locProbeCount, locProbeHT, locProbeRight, locProbeOut, locPOS int
	// scan-predicate expression-percentage locations per relation, resolved
	// once so leaf vectors need no map walks.
	exprLocs [][]exprLoc
}

// exprLoc pairs a resolved vector index with the relation's precomputed
// expression percentage.
type exprLoc struct {
	idx int
	pct float64
}

// newT3Feat resolves registry locations and derives per-relation estimates.
func newT3Feat(reg *feature.Registry, inst *workload.Instance, spec *workload.JoinSpec) *t3feat {
	f := &t3feat{reg: reg, rels: newSpecEstimator(inst, spec)}

	scan := feature.StageKey{Op: plan.TableScanOp, Stage: plan.StageScan}
	build := feature.StageKey{Op: plan.HashJoinOp, Stage: plan.StageBuild}
	probe := feature.StageKey{Op: plan.HashJoinOp, Stage: plan.StageProbe}
	f.locScanCount = reg.Location(scan, feature.FCount)
	f.locScanCard = reg.Location(scan, feature.FInCard)
	f.locScanOutPct = reg.Location(scan, feature.FOutPct)
	f.locBuildCount = reg.Location(build, feature.FCount)
	f.locBuildCard = reg.Location(build, feature.FInCard)
	f.locBuildSize = reg.Location(build, feature.FInSize)
	f.locBuildPct = reg.Location(build, feature.FInPct)
	f.locProbeCount = reg.Location(probe, feature.FCount)
	f.locProbeHT = reg.Location(probe, feature.FHTCard)
	f.locProbeRight = reg.Location(probe, feature.FRightPct)
	f.locProbeOut = reg.Location(probe, feature.FOutPct)
	f.locPOS = reg.Location(probe, feature.FOutSize)

	f.exprLocs = make([][]exprLoc, len(spec.Rels))
	for rel := range spec.Rels {
		for name, frac := range f.rels.exprPcts[rel] {
			if i := reg.Location(scan, name); i >= 0 {
				f.exprLocs[rel] = append(f.exprLocs[rel], exprLoc{idx: i, pct: frac})
			}
		}
	}
	return f
}

// leafInto writes relation rel's scan-stage vector into vec (zeroing it
// first) and returns the pipeline source cardinality, the relation's
// estimated output cardinality, and its tuple width.
func (f *t3feat) leafInto(vec []float64, rel int) (srcCard, card, width float64) {
	for i := range vec {
		vec[i] = 0
	}
	tableCard := f.rels.tableCards[rel]
	relCard := f.rels.relCards[rel]
	if f.locScanCount >= 0 {
		vec[f.locScanCount] = 1
	}
	if f.locScanCard >= 0 {
		vec[f.locScanCard] = tableCard
	}
	if f.locScanOutPct >= 0 && tableCard > 0 {
		vec[f.locScanOutPct] = relCard / tableCard
	}
	for _, el := range f.exprLocs[rel] {
		vec[el.idx] = el.pct
	}
	return tableCard, relCard, f.rels.widths[rel]
}

// closeBuildInto writes src extended by a hash-join build stage into dst
// (dst and src must not overlap): the build side's open pipeline now ends by
// materializing its hash table.
func (f *t3feat) closeBuildInto(dst, src []float64, bCard, bSrcCard, bWidth float64) {
	copy(dst, src)
	if f.locBuildCount >= 0 {
		dst[f.locBuildCount]++
	}
	if f.locBuildCard >= 0 {
		dst[f.locBuildCard] += bCard
	}
	if f.locBuildSize >= 0 {
		dst[f.locBuildSize] += bWidth
	}
	if f.locBuildPct >= 0 && bSrcCard > 0 {
		dst[f.locBuildPct] += bCard / bSrcCard
	}
}

// extendProbeInto writes src extended by a hash-join probe stage into dst
// (dst and src must not overlap): the probe side's open pipeline now flows
// through the new join.
func (f *t3feat) extendProbeInto(dst, src []float64, bCard, bWidth, pCard, pSrcCard, pWidth, outCard float64) {
	copy(dst, src)
	if f.locProbeCount >= 0 {
		dst[f.locProbeCount]++
	}
	if f.locProbeHT >= 0 {
		dst[f.locProbeHT] += bCard
	}
	if f.locProbeRight >= 0 && pSrcCard > 0 {
		dst[f.locProbeRight] += pCard / pSrcCard
	}
	if f.locProbeOut >= 0 && pSrcCard > 0 {
		dst[f.locProbeOut] += outCard / pSrcCard
	}
	if f.locPOS >= 0 {
		dst[f.locPOS] += pWidth + bWidth
	}
}

// specEstimates precomputes per-relation data shared by oracles and the T3
// cost model.
type specEstimates struct {
	tableCards []float64
	relCards   []float64 // after pushed predicates (estimated)
	widths     []float64
	exprPcts   []map[string]float64
	edgeSels   []float64
}

// newSpecEstimator derives relation-level estimates from instance
// statistics.
func newSpecEstimator(inst *workload.Instance, spec *workload.JoinSpec) *specEstimates {
	est := &stats.Estimator{DB: inst.Stats}
	se := &specEstimates{}
	for _, rel := range spec.Rels {
		scan := rel.Scan(inst)
		est.Estimate(scan)
		se.tableCards = append(se.tableCards, scan.ScanCard)
		se.relCards = append(se.relCards, scan.OutCard.Est)
		se.widths = append(se.widths, float64(scan.OutWidth()))
		pcts := make(map[string]float64)
		reach := 1.0
		for i, pred := range scan.Predicates {
			name := feature.FExprPrefix + pred.Class().String() + "_percentage"
			pcts[name] += reach
			reach *= scan.PredSel[i].Est
		}
		se.exprPcts = append(se.exprPcts, pcts)
	}
	for _, e := range spec.Edges {
		ta := inst.Table(spec.Rels[e.A].Table)
		tb := inst.Table(spec.Rels[e.B].Table)
		da := float64(inst.Stats.Tables[ta.Name].Cols[spec.Rels[e.A].ScanCols[e.ACol]].Distinct)
		db := float64(inst.Stats.Tables[tb.Name].Cols[spec.Rels[e.B].ScanCols[e.BCol]].Distinct)
		se.edgeSels = append(se.edgeSels, 1/math.Max(math.Max(da, db), 1))
	}
	return se
}
