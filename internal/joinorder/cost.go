package joinorder

import (
	"math"

	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/feature"
	"t3/internal/treec"
	"t3/internal/workload"
)

// CoutModel is the Cout cost function of Cluet & Moerkotte (Eq. 3 of the
// paper): 0 for leaves, |T| + Cout(T1) + Cout(T2) for joins. Computable with
// three additions per DP step.
type CoutModel struct {
	oracle Oracle
	calls  int
}

// NewCout builds the Cout model over an oracle.
func NewCout(oracle Oracle) *CoutModel { return &CoutModel{oracle: oracle} }

// Name identifies the model.
func (c *CoutModel) Name() string { return "Cout" }

// Leaf costs nothing.
func (c *CoutModel) Leaf(rel int) State { return float64(0) }

// Join adds the new intermediate's cardinality.
func (c *CoutModel) Join(build, probe State, buildSet, probeSet uint64) State {
	c.calls++
	return build.(float64) + probe.(float64) + c.oracle.Card(buildSet|probeSet)
}

// Total returns the accumulated cost.
func (c *CoutModel) Total(s State) float64 { return s.(float64) }

// Calls reports model invocations.
func (c *CoutModel) Calls() int { return c.calls }

// t3State is the per-subtree memo of the T3 cost model: the total predicted
// time of all closed pipelines plus the feature vector of the still-open
// pipeline (§5.5: "we cache the cost for all other pipelines that already
// finished in the subtrees").
type t3State struct {
	closedSeconds float64
	openVec       []float64 // feature vector of the open pipeline so far
	openSrcCard   float64   // scan cardinality driving the open pipeline
	card          float64   // output cardinality of the subtree
	width         float64   // approximate tuple width of the subtree output
}

// T3CostModel prices join trees with a trained T3 model. Every DP step
// makes exactly two model calls: one for the build side's now-closed
// pipeline, one for the probe side's extended open pipeline.
type T3CostModel struct {
	flat   *treec.Flat
	reg    *feature.Registry
	oracle Oracle
	spec   *workload.JoinSpec
	rels   *specEstimates
	calls  int

	// cached registry locations
	locScanCount, locScanCard, locScanOutPct                      int
	locBuildCount, locBuildCard, locBuildSize, locBuildPct        int
	locProbeCount, locProbeHT, locProbeRight, locProbeOut, locPOS int
}

// NewT3Cost builds the T3 cost model. flat is the compiled model and reg its
// registry; the oracle supplies subset cardinalities.
func NewT3Cost(flat *treec.Flat, reg *feature.Registry, inst *workload.Instance, spec *workload.JoinSpec, oracle Oracle) *T3CostModel {
	m := &T3CostModel{flat: flat, reg: reg, oracle: oracle, spec: spec}
	m.rels = newSpecEstimator(inst, spec)

	scan := feature.StageKey{Op: plan.TableScanOp, Stage: plan.StageScan}
	build := feature.StageKey{Op: plan.HashJoinOp, Stage: plan.StageBuild}
	probe := feature.StageKey{Op: plan.HashJoinOp, Stage: plan.StageProbe}
	m.locScanCount = reg.Location(scan, feature.FCount)
	m.locScanCard = reg.Location(scan, feature.FInCard)
	m.locScanOutPct = reg.Location(scan, feature.FOutPct)
	m.locBuildCount = reg.Location(build, feature.FCount)
	m.locBuildCard = reg.Location(build, feature.FInCard)
	m.locBuildSize = reg.Location(build, feature.FInSize)
	m.locBuildPct = reg.Location(build, feature.FInPct)
	m.locProbeCount = reg.Location(probe, feature.FCount)
	m.locProbeHT = reg.Location(probe, feature.FHTCard)
	m.locProbeRight = reg.Location(probe, feature.FRightPct)
	m.locProbeOut = reg.Location(probe, feature.FOutPct)
	m.locPOS = reg.Location(probe, feature.FOutSize)
	return m
}

// Name identifies the model.
func (m *T3CostModel) Name() string { return "T3" }

// predict evaluates the compiled model for one pipeline vector and scales to
// seconds.
func (m *T3CostModel) predict(vec []float64, srcCard float64) float64 {
	m.calls++
	perTuple := benchdata.InverseTarget(m.flat.Predict(vec))
	if srcCard < 1 {
		srcCard = 1
	}
	return perTuple * srcCard
}

// Leaf starts an open pipeline with the relation's scan stage.
func (m *T3CostModel) Leaf(rel int) State {
	vec := make([]float64, m.reg.NumFeatures())
	tableCard := m.rels.tableCards[rel]
	relCard := m.rels.relCards[rel]
	if m.locScanCount >= 0 {
		vec[m.locScanCount] = 1
	}
	if m.locScanCard >= 0 {
		vec[m.locScanCard] = tableCard
	}
	if m.locScanOutPct >= 0 && tableCard > 0 {
		vec[m.locScanOutPct] = relCard / tableCard
	}
	for name, frac := range m.rels.exprPcts[rel] {
		if i := m.reg.Location(feature.StageKey{Op: plan.TableScanOp, Stage: plan.StageScan}, name); i >= 0 {
			vec[i] = frac
		}
	}
	return &t3State{
		openVec:     vec,
		openSrcCard: tableCard,
		card:        relCard,
		width:       m.rels.widths[rel],
	}
}

// Join closes the build side's pipeline with a build stage (one model call)
// and extends the probe side's open pipeline with a probe stage (the second
// model call happens when comparing totals).
func (m *T3CostModel) Join(build, probe State, buildSet, probeSet uint64) State {
	b := build.(*t3State)
	p := probe.(*t3State)

	// Close the build pipeline: append the hash-join build stage.
	bvec := append([]float64(nil), b.openVec...)
	if m.locBuildCount >= 0 {
		bvec[m.locBuildCount]++
	}
	if m.locBuildCard >= 0 {
		bvec[m.locBuildCard] += b.card
	}
	if m.locBuildSize >= 0 {
		bvec[m.locBuildSize] += b.width
	}
	if m.locBuildPct >= 0 && b.openSrcCard > 0 {
		bvec[m.locBuildPct] += b.card / b.openSrcCard
	}
	closed := b.closedSeconds + p.closedSeconds + m.predict(bvec, b.openSrcCard)

	// Extend the probe pipeline.
	outCard := m.oracle.Card(buildSet | probeSet)
	pvec := append([]float64(nil), p.openVec...)
	if m.locProbeCount >= 0 {
		pvec[m.locProbeCount]++
	}
	if m.locProbeHT >= 0 {
		pvec[m.locProbeHT] += b.card
	}
	if m.locProbeRight >= 0 && p.openSrcCard > 0 {
		pvec[m.locProbeRight] += p.card / p.openSrcCard
	}
	if m.locProbeOut >= 0 && p.openSrcCard > 0 {
		pvec[m.locProbeOut] += outCard / p.openSrcCard
	}
	if m.locPOS >= 0 {
		pvec[m.locPOS] += p.width + b.width
	}
	return &t3State{
		closedSeconds: closed,
		openVec:       pvec,
		openSrcCard:   p.openSrcCard,
		card:          outCard,
		width:         p.width + b.width,
	}
}

// Total prices the state: closed pipelines plus the current open pipeline
// (the second model call per DP step).
func (m *T3CostModel) Total(s State) float64 {
	st := s.(*t3State)
	return st.closedSeconds + m.predict(st.openVec, st.openSrcCard)
}

// Calls reports model invocations.
func (m *T3CostModel) Calls() int { return m.calls }

// specEstimates precomputes per-relation data shared by oracles and the T3
// cost model.
type specEstimates struct {
	tableCards []float64
	relCards   []float64 // after pushed predicates (estimated)
	widths     []float64
	exprPcts   []map[string]float64
	edgeSels   []float64
}

// newSpecEstimator derives relation-level estimates from instance
// statistics.
func newSpecEstimator(inst *workload.Instance, spec *workload.JoinSpec) *specEstimates {
	est := &stats.Estimator{DB: inst.Stats}
	se := &specEstimates{}
	for _, rel := range spec.Rels {
		scan := rel.Scan(inst)
		est.Estimate(scan)
		se.tableCards = append(se.tableCards, scan.ScanCard)
		se.relCards = append(se.relCards, scan.OutCard.Est)
		se.widths = append(se.widths, float64(scan.OutWidth()))
		pcts := make(map[string]float64)
		reach := 1.0
		for i, pred := range scan.Predicates {
			name := feature.FExprPrefix + pred.Class().String() + "_percentage"
			pcts[name] += reach
			reach *= scan.PredSel[i].Est
		}
		se.exprPcts = append(se.exprPcts, pcts)
	}
	for _, e := range spec.Edges {
		ta := inst.Table(spec.Rels[e.A].Table)
		tb := inst.Table(spec.Rels[e.B].Table)
		da := float64(inst.Stats.Tables[ta.Name].Cols[spec.Rels[e.A].ScanCols[e.ACol]].Distinct)
		db := float64(inst.Stats.Tables[tb.Name].Cols[spec.Rels[e.B].ScanCols[e.BCol]].Distinct)
		se.edgeSels = append(se.edgeSels, 1/math.Max(math.Max(da, db), 1))
	}
	return se
}
