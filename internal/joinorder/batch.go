package joinorder

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
	"time"

	"t3/internal/feature"
	"t3/internal/obs"
	"t3/internal/par"
	"t3/internal/treec"
	"t3/internal/workload"
)

// This file implements the level-batched DPsize enumerator: instead of one
// scalar model call per candidate join, candidates are gathered per DP level
// and priced in batched packed-tier prediction waves over a flat row-major
// arena (fanned across the shared worker pool for large waves). Waves are
// replayed best-first per subset with an exact incumbent prune, so most
// candidates never reach the model at all.
//
// Determinism contract with the scalar path (DPSize + T3CostModel over the
// same *treec.Packed):
//
//   - Vectors are produced by the same t3feat transition functions
//     (leafInto / closeBuildInto / extendProbeInto), so they are equal by
//     construction. Copy-on-extend happens directly into the arena.
//   - Packed.PredictRowsInto adds tree contributions in tree order per row,
//     independent of blocking, flush boundaries, and worker count, so every
//     prediction is bit-identical to a scalar Packed.Predict of the same row.
//   - Seconds are accumulated in the scalar path's exact float order:
//     closed = (build.closed + probe.closed) + closePred; total = closed +
//     openPred, both via the shared scaleSeconds.
//   - The scalar loop keeps the first candidate (in enumeration order) that
//     is strictly cheaper than the incumbent, which selects the minimum total
//     with earliest-candidate tie-break. That selection is replay-order-free,
//     so waves may evaluate candidates in any order and still install the
//     scalar winner: the replay compares (total, gather index) pairs.
//
// The incumbent prune is exact, with no epsilons: a candidate's gather key is
// key = fl(build.closed + probe.closed), and its eventual cost is
// total = fl(fl(key + buildPred) + openPred) with buildPred, openPred >= 0.
// Float rounding of a sum of non-negatives is monotone, so total >= key.
// Incumbent totals only decrease, so once key >= incumbent total the
// candidate provably cannot win — it is dropped without being featurized or
// predicted. Within a subset, candidates are evaluated cheapest-key-first
// (one per wave), which makes the incumbent converge to its final value
// almost immediately and prunes the bulk of the level.
//
// Together these make DPSizeBatched return bit-identical costs and the same
// optimal tree as the scalar reference for any MaxBatch and worker count —
// the property test in batch_test.go pins this. The evaluated-candidate set
// is also identical across configs: waves are assembled only from state
// established before the wave, never from mid-wave replays.

// DefaultMaxBatch bounds feature rows per prediction flush when
// BatchConfig.MaxBatch is zero. Chunked flushing keeps each packed-tier call
// cache-friendly on clique-shaped graphs whose waves hold thousands of rows.
const DefaultMaxBatch = 2048

// BatchConfig tunes the level-batched enumerator.
type BatchConfig struct {
	// Workers fans prediction flushes across a cached worker pool
	// (0 = GOMAXPROCS, 1 = serial). Costs are bit-identical for every value.
	Workers int
	// MaxBatch bounds the feature rows predicted per flush (0 = DefaultMaxBatch).
	MaxBatch int
}

// batchSlot is the running winner for one relation subset: the batched
// counterpart of t3State, stored flat in a reusable freelist-style slice with
// its open-pipeline vector in a pooled slab (vecOff indexes batchEnum.slotVec).
type batchSlot struct {
	closedSeconds float64
	openPred      float64 // memoized open-pipeline seconds of the winner
	total         float64 // closedSeconds + openPred, the comparison key
	openSrcCard   float64
	card          float64
	width         float64
	buildPred     float64 // memoized close-build seconds (this slot as build side)
	bs, ps        uint64  // winning split, for tree reconstruction
	vecOff        int32   // open-pipeline vector offset into slotVec
	winIdx        int32   // gather index of the winner, for tie-breaking
	hasWinner     bool
	buildPredOK   bool
}

// candRef describes one gathered candidate join awaiting evaluation or
// pruning. key is the exact float lower bound of the candidate's total
// (the two finalized closed-pipeline sums), used both as the best-first
// ordering key and in the incumbent prune.
type candRef struct {
	buildSlot int32
	probeSlot int32
	winSlot   int32
	bs, ps    uint64
	outCard   float64
	key       float64
}

// waveRef is one wave member: a candidate plus its arena rows for this wave
// (closeRow is -1 when the build side's close prediction is already memoized
// or queued earlier in the same wave).
type waveRef struct {
	cand     int32
	closeRow int32
	extRow   int32
}

// batchEnum is the pooled scratch of one enumeration: candidate arena, output
// buffer, wave and ordering scratch, slot freelist, slot vector slab, and DP
// index. Steady-state reuse via batchPool is what holds the CI-guarded
// allocation bound.
type batchEnum struct {
	stride  int
	rows    []float64 // wave-local candidate arena, row-major
	out     []float64
	cands   []candRef // current level's candidates, in enumeration order
	waves   []waveRef
	order   []int32  // level candidates grouped by subset, cheapest key first
	keys    []uint64 // per-segment sort scratch: float32 key bits | cand index
	slotOff []int32  // order segment bounds per level slot
	slotCur []int32  // per level slot cursor into order
	slots   []batchSlot
	slotVec []float64 // persistent open-pipeline vectors, indexed by vecOff
	zeroRow []float64 // stride zeros, append source for arena growth
	dp      map[uint64]int32
	bySize  [][]uint64
	// closeRowOf[si] is the arena row carrying slot si's close-build vector in
	// the current wave (-1 when absent); closeTouched lists the slots to reset.
	closeRowOf   []int32
	closeTouched []int32
}

var batchPool sync.Pool

// getBatchEnum checks scratch out of the pool and sizes it for the run.
func getBatchEnum(stride, maxRows, n int) *batchEnum {
	e, _ := batchPool.Get().(*batchEnum)
	if e == nil {
		e = &batchEnum{dp: make(map[uint64]int32, 1<<8)}
	}
	if e.stride != stride || cap(e.rows) < maxRows*stride {
		e.rows = make([]float64, 0, maxRows*stride)
		e.out = make([]float64, maxRows)
		e.zeroRow = make([]float64, stride)
	}
	e.stride = stride
	e.rows = e.rows[:0]
	e.cands = e.cands[:0]
	e.waves = e.waves[:0]
	e.order = e.order[:0]
	e.slots = e.slots[:0]
	e.slotVec = e.slotVec[:0]
	e.closeTouched = e.closeTouched[:0]
	clear(e.dp)
	if cap(e.bySize) < n+1 {
		e.bySize = make([][]uint64, n+1)
	}
	e.bySize = e.bySize[:n+1]
	for i := range e.bySize {
		e.bySize[i] = e.bySize[i][:0]
	}
	return e
}

func putBatchEnum(e *batchEnum) { batchPool.Put(e) }

// newSlot appends a fresh slot with slab-backed vector storage and returns
// its index.
func (e *batchEnum) newSlot() int32 {
	si := int32(len(e.slots))
	off := int32(len(e.slotVec))
	e.slotVec = append(e.slotVec, e.zeroRow...)
	if cap(e.slots) > len(e.slots) {
		e.slots = e.slots[:len(e.slots)+1]
		e.slots[si] = batchSlot{vecOff: off}
	} else {
		e.slots = append(e.slots, batchSlot{vecOff: off})
	}
	if len(e.closeRowOf) <= int(si) {
		e.closeRowOf = append(e.closeRowOf, -1)
	} else {
		e.closeRowOf[si] = -1
	}
	return si
}

// slotVecOf returns slot si's persistent open-pipeline vector.
func (e *batchEnum) slotVecOf(si int32) []float64 {
	off := int(e.slots[si].vecOff)
	return e.slotVec[off : off+e.stride]
}

// addRow claims the next arena row (growing the arena when a wave outruns
// its pooled capacity) and returns its index.
func (e *batchEnum) addRow() int32 {
	r := int32(len(e.rows) / e.stride)
	if len(e.rows)+e.stride <= cap(e.rows) {
		e.rows = e.rows[:len(e.rows)+e.stride]
	} else {
		e.rows = append(e.rows, e.zeroRow...)
	}
	return r
}

// row returns arena row r.
func (e *batchEnum) row(r int32) []float64 {
	return e.rows[int(r)*e.stride : (int(r)+1)*e.stride]
}

// orderLevel groups the level's candidates by subset slot and sorts each
// group cheapest-key-first. Keys are compared through their float32 bits —
// any deterministic order is sound (winner selection is order-free), and the
// packed uint64 sort keeps the hot path allocation- and closure-free.
func (e *batchEnum) orderLevel(levelSlotLo int32, nslots int) {
	if cap(e.slotOff) < nslots+1 {
		e.slotOff = make([]int32, nslots+1)
		e.slotCur = make([]int32, nslots)
	}
	e.slotOff = e.slotOff[:nslots+1]
	e.slotCur = e.slotCur[:nslots]
	for i := range e.slotOff {
		e.slotOff[i] = 0
	}
	for _, c := range e.cands {
		e.slotOff[c.winSlot-levelSlotLo+1]++
	}
	for s := 0; s < nslots; s++ {
		e.slotOff[s+1] += e.slotOff[s]
		e.slotCur[s] = e.slotOff[s]
	}
	if cap(e.order) < len(e.cands) {
		e.order = make([]int32, len(e.cands))
	}
	e.order = e.order[:len(e.cands)]
	for ci := range e.cands {
		s := e.cands[ci].winSlot - levelSlotLo
		e.order[e.slotCur[s]] = int32(ci)
		e.slotCur[s]++
	}
	maxSeg := 0
	for s := 0; s < nslots; s++ {
		if n := int(e.slotOff[s+1] - e.slotOff[s]); n > maxSeg {
			maxSeg = n
		}
	}
	if cap(e.keys) < maxSeg {
		e.keys = make([]uint64, maxSeg)
	}
	for s := 0; s < nslots; s++ {
		seg := e.order[e.slotOff[s]:e.slotOff[s+1]]
		e.slotCur[s] = e.slotOff[s]
		if len(seg) < 2 {
			continue
		}
		ks := e.keys[:len(seg)]
		for i, ci := range seg {
			ks[i] = uint64(math.Float32bits(float32(e.cands[ci].key)))<<32 | uint64(uint32(ci))
		}
		slices.Sort(ks)
		for i, k := range ks {
			seg[i] = int32(uint32(k))
		}
	}
}

// DPSizeBatched runs DPsize with level-batched packed-tier costing: the
// batched, allocation-lean, pruned equivalent of DPSize over
// NewT3Cost(packed, ...). It returns bit-identical costs and the same optimal
// tree as that scalar reference for any BatchConfig (see the determinism
// contract above).
func DPSizeBatched(spec *workload.JoinSpec, pred *treec.Packed, reg *feature.Registry, inst *workload.Instance, oracle Oracle, cfg BatchConfig) (*Result, error) {
	n := len(spec.Rels)
	if n == 0 {
		return nil, fmt.Errorf("joinorder: empty spec")
	}
	if n > 62 {
		return nil, fmt.Errorf("joinorder: %d relations exceed bitmask capacity", n)
	}
	maxRows := cfg.MaxBatch
	if maxRows <= 0 {
		maxRows = DefaultMaxBatch
	}
	if maxRows < 2 {
		maxRows = 2
	}
	pool := par.Sized(cfg.Workers)
	feat := newT3Feat(reg, inst, spec)
	stride := reg.NumFeatures()

	e := getBatchEnum(stride, maxRows, n)
	defer putBatchEnum(e)

	start := time.Now()
	res := &Result{}
	adjacency := buildAdjacency(spec, n)

	// Leaves: one slot per relation, vector written straight into the slab.
	for r := 0; r < n; r++ {
		si := e.newSlot()
		srcCard, card, width := feat.leafInto(e.slotVecOf(si), r)
		s := &e.slots[si]
		s.openSrcCard, s.card, s.width = srcCard, card, width
		s.hasWinner = true
		e.dp[uint64(1)<<uint(r)] = si
		e.bySize[1] = append(e.bySize[1], uint64(1)<<uint(r))
	}

	// runLevel prices one DP level's gathered candidates in best-first waves.
	// Each wave takes the cheapest not-yet-pruned candidate of every subset
	// (skipping candidates whose exact closed-cost lower bound has reached
	// the incumbent), predicts all wave rows batched, and replays exactly.
	runLevel := func(levelSlotLo int32) {
		nslots := len(e.slots) - int(levelSlotLo)
		if nslots == 0 || len(e.cands) == 0 {
			return
		}
		e.orderLevel(levelSlotLo, nslots)
		for {
			e.waves = e.waves[:0]
			e.rows = e.rows[:0]
			for s := 0; s < nslots; s++ {
				cur := e.slotCur[s]
				end := e.slotOff[s+1]
				w := &e.slots[levelSlotLo+int32(s)]
				for cur < end {
					ci := e.order[cur]
					c := &e.cands[ci]
					if w.hasWinner {
						if c.key >= w.total {
							// Keys ascend within the segment: everything left
							// is a certain loser.
							res.Pruned += int(end - cur)
							cur = end
							break
						}
						if b := &e.slots[c.buildSlot]; b.buildPredOK && c.key+b.buildPred >= w.total {
							res.Pruned++
							cur++
							continue
						}
					}
					b := &e.slots[c.buildSlot]
					cr := int32(-1)
					if !b.buildPredOK && e.closeRowOf[c.buildSlot] < 0 {
						cr = e.addRow()
						feat.closeBuildInto(e.row(cr), e.slotVecOf(c.buildSlot), b.card, b.openSrcCard, b.width)
						e.closeRowOf[c.buildSlot] = cr
						e.closeTouched = append(e.closeTouched, c.buildSlot)
					}
					p := &e.slots[c.probeSlot]
					er := e.addRow()
					feat.extendProbeInto(e.row(er), e.slotVecOf(c.probeSlot), b.card, b.width, p.card, p.openSrcCard, p.width, c.outCard)
					e.waves = append(e.waves, waveRef{cand: ci, closeRow: cr, extRow: er})
					cur++
					break
				}
				e.slotCur[s] = cur
			}
			if len(e.waves) == 0 {
				return
			}

			nrows := len(e.rows) / stride
			if cap(e.out) < nrows {
				e.out = make([]float64, nrows)
			}
			out := e.out[:nrows]
			for lo := 0; lo < nrows; lo += maxRows {
				hi := min(lo+maxRows, nrows)
				pred.PredictRowsInto(e.rows[lo*stride:hi*stride], stride, out[lo:hi], pool)
				res.Batches++
				if hi-lo > res.MaxBatch {
					res.MaxBatch = hi - lo
				}
				obs.JoinorderBatchSize.Record(uint64(hi - lo))
			}
			res.ModelCalls += nrows

			for _, wr := range e.waves {
				c := &e.cands[wr.cand]
				b := &e.slots[c.buildSlot]
				if wr.closeRow >= 0 {
					b.buildPred = scaleSeconds(out[wr.closeRow], b.openSrcCard)
					b.buildPredOK = true
				}
				p := &e.slots[c.probeSlot]
				closed := b.closedSeconds + p.closedSeconds + b.buildPred
				openPred := scaleSeconds(out[wr.extRow], p.openSrcCard)
				total := closed + openPred
				w := &e.slots[c.winSlot]
				if !w.hasWinner || total < w.total || (total == w.total && wr.cand < w.winIdx) {
					w.hasWinner = true
					w.closedSeconds = closed
					w.openPred = openPred
					w.total = total
					w.openSrcCard = p.openSrcCard
					w.card = c.outCard
					w.width = p.width + b.width
					w.bs, w.ps = c.bs, c.ps
					w.winIdx = wr.cand
					copy(e.slotVecOf(c.winSlot), e.row(wr.extRow))
				}
			}
			for _, si := range e.closeTouched {
				e.closeRowOf[si] = -1
			}
			e.closeTouched = e.closeTouched[:0]
		}
	}

	steps := 0
	for size := 2; size <= n; size++ {
		levelSlotLo := int32(len(e.slots))
		e.cands = e.cands[:0]
		for s1 := 1; s1 <= size/2; s1++ {
			s2 := size - s1
			for _, a := range e.bySize[s1] {
				for _, b := range e.bySize[s2] {
					if a&b != 0 || (s1 == s2 && a >= b) {
						continue
					}
					if !setsConnected(adjacency, a, b, n) {
						continue
					}
					sa, sb := e.dp[a], e.dp[b]
					set := a | b
					wi, ok := e.dp[set]
					if !ok {
						wi = e.newSlot()
						e.dp[set] = wi
						e.bySize[size] = append(e.bySize[size], set)
					}
					for _, pair := range [2][2]uint64{{a, b}, {b, a}} {
						bs, ps := pair[0], pair[1]
						var bSlot, pSlot int32
						if bs == a {
							bSlot, pSlot = sa, sb
						} else {
							bSlot, pSlot = sb, sa
						}
						steps++
						outCard := oracle.Card(set)
						e.cands = append(e.cands, candRef{
							buildSlot: bSlot,
							probeSlot: pSlot,
							winSlot:   wi,
							bs:        bs,
							ps:        ps,
							outCard:   outCard,
							key:       e.slots[bSlot].closedSeconds + e.slots[pSlot].closedSeconds,
						})
					}
				}
			}
		}
		runLevel(levelSlotLo)
	}

	full := uint64(1)<<uint(n) - 1
	si, ok := e.dp[full]
	if !ok {
		return nil, fmt.Errorf("joinorder: join graph of %s is disconnected", spec.Name)
	}
	if n == 1 {
		// Single relation: the open pipeline is the whole plan.
		s := &e.slots[si]
		res.ModelCalls++
		s.total = scaleSeconds(pred.Predict(e.slotVecOf(si)), s.openSrcCard)
	}
	res.Tree = e.rebuildTree(full)
	res.Cost = e.slots[si].total
	res.DPSteps = steps
	recordEnumeration(res, time.Since(start))
	return res, nil
}

// rebuildTree materializes the optimal join tree from the winning splits
// recorded in the slots. Valid because every slot's (bs, ps) reference
// finalized smaller-level subsets.
func (e *batchEnum) rebuildTree(set uint64) *Tree {
	if bits.OnesCount64(set) == 1 {
		return &Tree{Rel: bits.TrailingZeros64(set)}
	}
	s := &e.slots[e.dp[set]]
	return &Tree{Left: e.rebuildTree(s.bs), Right: e.rebuildTree(s.ps)}
}
