// Package joinorder implements the DPsize join-ordering algorithm
// (Moerkotte & Neumann) with pluggable cost models, reproducing the paper's
// join-ordering microbenchmark (§5.5, Tables 5 and 6).
//
// Two cost models are provided: Cout (Cluet & Moerkotte) — the sum of
// intermediate result sizes — and a T3-backed model that prices the two
// pipelines that change with every new subtree (the build stage appended to
// the left subtree's open pipeline and the probe stage appended to the right
// subtree's), caching the cost of already-closed pipelines exactly as the
// paper describes.
package joinorder

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/workload"
)

// Tree is a join tree over relation indices: a leaf (Left == nil) or an
// inner join of two subtrees, with Left as the hash-join build side.
type Tree struct {
	Rel         int
	Left, Right *Tree
}

// Rels returns the bitmask of relations in the tree.
func (t *Tree) Rels() uint64 {
	if t.Left == nil {
		return 1 << uint(t.Rel)
	}
	return t.Left.Rels() | t.Right.Rels()
}

// String renders the tree, e.g. "((0⋈1)⋈2)".
func (t *Tree) String() string {
	if t.Left == nil {
		return fmt.Sprintf("%d", t.Rel)
	}
	return fmt.Sprintf("(%s⋈%s)", t.Left, t.Right)
}

// Oracle provides cardinalities for relation subsets. Card is called with a
// bitmask over the spec's relations.
type Oracle interface {
	Card(set uint64) float64
}

// OracleCallCounter is implemented by oracles that count how often their
// underlying cardinality source ran. The planner benchmarks surface these
// counts next to model calls, so oracle cost can never masquerade as model
// cost.
type OracleCallCounter interface {
	OracleCalls() int
}

// OracleCalls returns the oracle's underlying call count, or 0 when the
// oracle does not track one.
func OracleCalls(o Oracle) int {
	if c, ok := o.(OracleCallCounter); ok {
		return c.OracleCalls()
	}
	return 0
}

// exactMemoCap bounds the subset count an ExactOracle presizes its memo for:
// beyond ~12 relations, presizing the full 2^n subset space would waste
// memory on subsets the (connected, cross-product-free) DP never visits.
const exactMemoCap = 1 << 12

// ExactOracle executes subset joins on the engine (with memoization) — the
// "cardinality oracle" of §5.5 providing correct cardinalities with low
// latency.
type ExactOracle struct {
	Inst  *workload.Instance
	Spec  *workload.JoinSpec
	memo  map[uint64]float64
	execs int
}

// NewExactOracle builds an exact oracle for the spec. The memo is presized
// from the spec's subset count (2^n, capped) so steady-state optimization
// never rehashes it.
func NewExactOracle(inst *workload.Instance, spec *workload.JoinSpec) *ExactOracle {
	size := exactMemoCap
	if n := len(spec.Rels); n < 12 {
		size = 1 << uint(n)
	}
	return &ExactOracle{Inst: inst, Spec: spec, memo: make(map[uint64]float64, size)}
}

// Card returns the exact cardinality of joining the subset.
func (o *ExactOracle) Card(set uint64) float64 {
	if v, ok := o.memo[set]; ok {
		return v
	}
	o.execs++
	root := subsetPlan(o.Inst, o.Spec, set)
	res, err := exec.Run(root, false)
	if err != nil {
		panic(fmt.Sprintf("joinorder: oracle execution failed: %v", err))
	}
	v := float64(res.Rows)
	o.memo[set] = v
	return v
}

// OracleCalls reports how many subset joins the oracle actually executed
// (memo hits excluded).
func (o *ExactOracle) OracleCalls() int { return o.execs }

// EstOracle estimates subset cardinalities from base statistics with
// textbook formulas (per-relation filtered cards, 1/max-distinct per edge) —
// the estimate-based mode used for the "native optimizer" comparison.
type EstOracle struct {
	RelCard []float64
	// EdgeSel[i] is the selectivity of spec edge i.
	EdgeSel []float64
	Spec    *workload.JoinSpec
	calls   int
}

// NewEstOracle derives an estimate oracle from instance statistics. Relation
// cardinalities use the annotated estimates of a fresh scan.
func NewEstOracle(inst *workload.Instance, spec *workload.JoinSpec) *EstOracle {
	o := &EstOracle{Spec: spec}
	est := newSpecEstimator(inst, spec)
	o.RelCard = est.relCards
	o.EdgeSel = est.edgeSels
	return o
}

// Card multiplies filtered relation cardinalities with the selectivities of
// all edges internal to the subset.
func (o *EstOracle) Card(set uint64) float64 {
	o.calls++
	card := 1.0
	for r := 0; r < len(o.RelCard); r++ {
		if set&(1<<uint(r)) != 0 {
			card *= o.RelCard[r]
		}
	}
	for i, e := range o.Spec.Edges {
		if set&(1<<uint(e.A)) != 0 && set&(1<<uint(e.B)) != 0 {
			card *= o.EdgeSel[i]
		}
	}
	return card
}

// OracleCalls reports how many estimates the oracle computed.
func (o *EstOracle) OracleCalls() int { return o.calls }

// MemoOracle caches another oracle's subset cardinalities, so repeated DP
// candidates pay one map lookup instead of recomputation. The planner
// benchmarks wrap their oracles in one per timed run, keeping oracle cost
// identical — and negligible — across the costing paths being compared.
type MemoOracle struct {
	Inner Oracle
	memo  map[uint64]float64
}

// NewMemoOracle builds a memoizing wrapper presized for an n-relation spec.
func NewMemoOracle(inner Oracle, n int) *MemoOracle {
	size := exactMemoCap
	if n < 12 {
		size = 1 << uint(n)
	}
	return &MemoOracle{Inner: inner, memo: make(map[uint64]float64, size)}
}

// Card returns the memoized cardinality of the subset.
func (o *MemoOracle) Card(set uint64) float64 {
	if v, ok := o.memo[set]; ok {
		return v
	}
	v := o.Inner.Card(set)
	o.memo[set] = v
	return v
}

// OracleCalls reports how many subsets missed the memo and hit the inner
// oracle.
func (o *MemoOracle) OracleCalls() int { return len(o.memo) }

// CostModel prices join trees during dynamic programming. Implementations
// carry per-subtree state (opaque to the DP).
type CostModel interface {
	Name() string
	// Leaf returns the state of a single-relation subtree.
	Leaf(rel int) State
	// Join combines two subtrees (build = left) into a new state.
	Join(build, probe State, buildSet, probeSet uint64) State
	// Total returns the comparable cost of a state.
	Total(s State) float64
	// Calls returns the number of model invocations so far.
	Calls() int
}

// State is a cost model's per-subtree memo.
type State interface{}

// dpEntry is the best plan found for a subset.
type dpEntry struct {
	state State
	tree  *Tree
}

// Result is the outcome of one DPsize run.
type Result struct {
	Tree *Tree
	Cost float64
	// ModelCalls counts cost-model invocations during optimization.
	ModelCalls int
	// DPSteps counts candidate joins the dynamic program evaluated.
	DPSteps int
	// Batches and MaxBatch describe the level-batched path's prediction
	// batches (zero on the scalar path).
	Batches  int
	MaxBatch int
	// Pruned counts candidates the batched path rejected through the exact
	// incumbent bound without ever featurizing or predicting them.
	Pruned int
}

// DPSize runs the DPsize dynamic program over the join graph, returning the
// cheapest (bushy, connected, cross-product-free) join tree.
func DPSize(spec *workload.JoinSpec, cm CostModel) (*Result, error) {
	n := len(spec.Rels)
	if n == 0 {
		return nil, fmt.Errorf("joinorder: empty spec")
	}
	if n > 62 {
		return nil, fmt.Errorf("joinorder: %d relations exceed bitmask capacity", n)
	}
	adjacency := buildAdjacency(spec, n)
	connected := func(s1, s2 uint64) bool { return setsConnected(adjacency, s1, s2, n) }

	start := time.Now()
	startCalls := cm.Calls()
	steps := 0
	dp := make(map[uint64]dpEntry)
	bySize := make([][]uint64, n+1)
	for r := 0; r < n; r++ {
		set := uint64(1) << uint(r)
		dp[set] = dpEntry{state: cm.Leaf(r), tree: &Tree{Rel: r}}
		bySize[1] = append(bySize[1], set)
	}

	for size := 2; size <= n; size++ {
		for s1 := 1; s1 <= size/2; s1++ {
			s2 := size - s1
			for _, a := range bySize[s1] {
				for _, b := range bySize[s2] {
					if a&b != 0 || (s1 == s2 && a >= b) {
						continue
					}
					if !connected(a, b) {
						continue
					}
					ea, eb := dp[a], dp[b]
					// Try both build/probe assignments.
					for _, pair := range [2][2]uint64{{a, b}, {b, a}} {
						bs, ps := pair[0], pair[1]
						var build, probe dpEntry
						if bs == a {
							build, probe = ea, eb
						} else {
							build, probe = eb, ea
						}
						steps++
						st := cm.Join(build.state, probe.state, bs, ps)
						set := a | b
						cur, ok := dp[set]
						if !ok || cm.Total(st) < cm.Total(cur.state) {
							if !ok {
								bySize[size] = append(bySize[size], set)
							}
							dp[set] = dpEntry{
								state: st,
								tree:  &Tree{Left: build.tree, Right: probe.tree},
							}
						}
					}
				}
			}
		}
	}
	full := uint64(1)<<uint(n) - 1
	e, ok := dp[full]
	if !ok {
		return nil, fmt.Errorf("joinorder: join graph of %s is disconnected", spec.Name)
	}
	res := &Result{Tree: e.tree, Cost: cm.Total(e.state), ModelCalls: cm.Calls() - startCalls, DPSteps: steps}
	recordEnumeration(res, time.Since(start))
	return res, nil
}

// buildAdjacency returns, for each relation, the bitmask of relations it
// shares an equi-edge with.
func buildAdjacency(spec *workload.JoinSpec, n int) []uint64 {
	adjacency := make([]uint64, n)
	for _, e := range spec.Edges {
		adjacency[e.A] |= 1 << uint(e.B)
		adjacency[e.B] |= 1 << uint(e.A)
	}
	return adjacency
}

// setsConnected reports whether any equi-edge crosses the two disjoint
// relation sets.
func setsConnected(adjacency []uint64, s1, s2 uint64, n int) bool {
	for r := 0; r < n; r++ {
		if s1&(1<<uint(r)) != 0 && adjacency[r]&s2 != 0 {
			return true
		}
	}
	return false
}

// recordEnumeration publishes one enumeration run's planner metrics.
func recordEnumeration(res *Result, elapsed time.Duration) {
	obs.JoinorderDPSteps.Add(uint64(res.DPSteps))
	obs.JoinorderModelCalls.Add(uint64(res.ModelCalls))
	obs.JoinorderEnumTime.Observe(elapsed)
}

// Greedy implements a GOO-style greedy operator ordering: repeatedly join
// the pair of connected subtrees with the smallest (estimated) result — a
// stand-in for the engine's native optimizer in Table 6, which has to rely
// on estimates instead of true cardinalities.
func Greedy(spec *workload.JoinSpec, oracle Oracle) (*Tree, error) {
	n := len(spec.Rels)
	type part struct {
		tree *Tree
		set  uint64
	}
	parts := make([]part, n)
	for r := 0; r < n; r++ {
		parts[r] = part{tree: &Tree{Rel: r}, set: 1 << uint(r)}
	}
	adjacent := func(s1, s2 uint64) bool {
		for _, e := range spec.Edges {
			ea, eb := uint64(1)<<uint(e.A), uint64(1)<<uint(e.B)
			if (s1&ea != 0 && s2&eb != 0) || (s1&eb != 0 && s2&ea != 0) {
				return true
			}
		}
		return false
	}
	for len(parts) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if !adjacent(parts[i].set, parts[j].set) {
					continue
				}
				c := oracle.Card(parts[i].set | parts[j].set)
				if c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		if bi < 0 {
			return nil, fmt.Errorf("joinorder: greedy found disconnected graph in %s", spec.Name)
		}
		// Build on the smaller input.
		l, r := parts[bi], parts[bj]
		if oracle.Card(l.set) > oracle.Card(r.set) {
			l, r = r, l
		}
		merged := part{tree: &Tree{Left: l.tree, Right: r.tree}, set: l.set | r.set}
		parts[bi] = merged
		parts = append(parts[:bj], parts[bj+1:]...)
	}
	return parts[0].tree, nil
}

// TreeToPlan materializes a join tree as a physical plan over the spec,
// ending in the JOB-style global aggregation. Build sides are the trees'
// Left children.
func TreeToPlan(inst *workload.Instance, spec *workload.JoinSpec, t *Tree) *plan.Node {
	return TreeToPlanSides(inst, spec, t, nil)
}

// TreeToPlanSides is TreeToPlan with engine-style build-side selection: when
// an oracle is given, each join builds its hash table over the smaller input
// (the paper notes Umbra performs this structural optimization, which is why
// the symmetric Cout function is not disadvantaged, §5.5 "Resulting Trees").
func TreeToPlanSides(inst *workload.Instance, spec *workload.JoinSpec, t *Tree, oracle Oracle) *plan.Node {
	node, _ := treeToPlan(inst, spec, t, oracle)
	// Final aggregation to a single tuple, as in JOBJoinSpecs plans.
	aggs := []plan.Agg{{Fn: plan.AggCount}}
	names := []string{"cnt"}
	return plan.NewGroupBy(node, nil, aggs, names)
}

// treeToPlan returns the plan and the column offset of each relation in the
// output schema (-1 when absent).
func treeToPlan(inst *workload.Instance, spec *workload.JoinSpec, t *Tree, oracle Oracle) (*plan.Node, []int) {
	offsets := make([]int, len(spec.Rels))
	for i := range offsets {
		offsets[i] = -1
	}
	if t.Left == nil {
		offsets[t.Rel] = 0
		return spec.Rels[t.Rel].Scan(inst), offsets
	}
	lt, rt := t.Left, t.Right
	if oracle != nil && oracle.Card(lt.Rels()) > oracle.Card(rt.Rels()) {
		lt, rt = rt, lt
	}
	build, bOff := treeToPlan(inst, spec, lt, oracle)
	probe, pOff := treeToPlan(inst, spec, rt, oracle)

	// Find an equi-edge crossing the two sides.
	buildKey, probeKey := -1, -1
	for _, e := range spec.Edges {
		if bOff[e.A] >= 0 && pOff[e.B] >= 0 {
			buildKey = bOff[e.A] + e.ACol
			probeKey = pOff[e.B] + e.BCol
			break
		}
		if bOff[e.B] >= 0 && pOff[e.A] >= 0 {
			buildKey = bOff[e.B] + e.BCol
			probeKey = pOff[e.A] + e.ACol
			break
		}
	}
	if buildKey < 0 {
		panic(fmt.Sprintf("joinorder: tree %s has a cross product in %s", t, spec.Name))
	}
	payload := make([]int, len(build.Schema))
	for i := range payload {
		payload[i] = i
	}
	node := plan.NewHashJoin(build, probe, []int{buildKey}, []int{probeKey}, payload)

	// Probe-side offsets stay; build-side offsets shift past the probe
	// schema.
	probeWidth := len(probe.Schema)
	for r := range offsets {
		switch {
		case pOff[r] >= 0:
			offsets[r] = pOff[r]
		case bOff[r] >= 0:
			offsets[r] = probeWidth + bOff[r]
		}
	}
	return node, offsets
}

// subsetPlan builds a left-deep plan joining exactly the relations in set,
// materializing (not aggregating) the result.
func subsetPlan(inst *workload.Instance, spec *workload.JoinSpec, set uint64) *plan.Node {
	if bits.OnesCount64(set) == 1 {
		r := bits.TrailingZeros64(set)
		return plan.NewMaterialize(spec.Rels[r].Scan(inst))
	}
	// Grow a connected order within the subset.
	var order []int
	in := func(r int) bool { return set&(1<<uint(r)) != 0 }
	used := make(map[int]bool)
	// Seed with the lowest relation in the set.
	first := bits.TrailingZeros64(set)
	order = append(order, first)
	used[first] = true
	for len(order) < bits.OnesCount64(set) {
		progress := false
		for _, e := range spec.Edges {
			var nr int = -1
			if used[e.A] && !used[e.B] && in(e.B) {
				nr = e.B
			} else if used[e.B] && !used[e.A] && in(e.A) {
				nr = e.A
			}
			if nr >= 0 {
				order = append(order, nr)
				used[nr] = true
				progress = true
			}
		}
		if !progress {
			panic(fmt.Sprintf("joinorder: subset %b of %s is disconnected", set, spec.Name))
		}
	}
	// Build left-deep over the sub-spec by reusing PlanForOrder on a
	// restricted spec.
	sub, mapping := restrict(spec, set)
	subOrder := make([]int, len(order))
	for i, r := range order {
		subOrder[i] = mapping[r]
	}
	joined := sub.PlanForOrderNoAgg(inst, subOrder)
	return plan.NewMaterialize(joined)
}

// restrict returns the spec limited to the subset, plus old→new index
// mapping.
func restrict(spec *workload.JoinSpec, set uint64) (*workload.JoinSpec, map[int]int) {
	sub := &workload.JoinSpec{Name: spec.Name + "~sub"}
	mapping := make(map[int]int)
	for r := range spec.Rels {
		if set&(1<<uint(r)) != 0 {
			mapping[r] = len(sub.Rels)
			sub.Rels = append(sub.Rels, spec.Rels[r])
		}
	}
	for _, e := range spec.Edges {
		na, aok := mapping[e.A]
		nb, bok := mapping[e.B]
		if aok && bok {
			sub.Edges = append(sub.Edges, workload.EdgeSpec{A: na, B: nb, ACol: e.ACol, BCol: e.BCol})
		}
	}
	return sub, mapping
}
