package joinorder

import (
	"testing"

	"t3/internal/benchdata"
	"t3/internal/feature"
	"t3/internal/gbdt"
	"t3/internal/treec"
	"t3/internal/workload"
)

// plannerT3 trains a small T3-shaped model with splits across several planner
// features and returns both compiled tiers (same trained trees, so the packed
// scalar path and the batched path share one prediction function).
func plannerT3(t testing.TB) (*treec.Flat, *treec.Packed, *feature.Registry) {
	t.Helper()
	reg := feature.NewDefaultRegistry()
	n := 600
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, reg.NumFeatures())
		for f := 0; f < 12; f++ {
			v[(f*13)%reg.NumFeatures()] = float64((i*(f+3))%29) * 7.5
		}
		xs[i] = v
		ys[i] = benchdata.TargetTransform(1e-8 * float64(1+i%11))
	}
	p := gbdt.DefaultParams()
	p.NumRounds = 20
	p.ValidationFraction = 0
	m, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return treec.Flatten(m), treec.Pack(m), reg
}

// TestBatchedMatchesScalar is the batched-vs-scalar determinism property:
// across seeded chain/star/clique graphs of 4–12 relations, every worker
// count and flush size must return bit-identical costs and the same optimal
// tree as the scalar DPSize reference running the same packed predictor.
func TestBatchedMatchesScalar(t *testing.T) {
	_, packed, reg := plannerT3(t)
	cases := []struct {
		shape string
		n     int
	}{
		{workload.ShapeChain, 4},
		{workload.ShapeChain, 7},
		{workload.ShapeChain, 12},
		{workload.ShapeStar, 5},
		{workload.ShapeStar, 9},
		{workload.ShapeStar, 12},
		{workload.ShapeClique, 4},
		{workload.ShapeClique, 6},
		{workload.ShapeClique, 8},
	}
	for _, c := range cases {
		inst, sp := workload.SyntheticJoinBench(c.shape, c.n, 256, int64(41*c.n))
		cm := NewT3Cost(packed, reg, inst, sp, NewEstOracle(inst, sp))
		ref, err := DPSize(sp, cm)
		if err != nil {
			t.Fatalf("%s: scalar: %v", sp.Name, err)
		}
		for _, workers := range []int{1, 4, 8} {
			for _, maxBatch := range []int{0, 7, 64} {
				cfg := BatchConfig{Workers: workers, MaxBatch: maxBatch}
				res, err := DPSizeBatched(sp, packed, reg, inst, NewEstOracle(inst, sp), cfg)
				if err != nil {
					t.Fatalf("%s w%d mb%d: %v", sp.Name, workers, maxBatch, err)
				}
				if res.Cost != ref.Cost {
					t.Errorf("%s w%d mb%d: cost %v != scalar %v", sp.Name, workers, maxBatch, res.Cost, ref.Cost)
				}
				if got, want := res.Tree.String(), ref.Tree.String(); got != want {
					t.Errorf("%s w%d mb%d: tree %s != scalar %s", sp.Name, workers, maxBatch, got, want)
				}
				if res.DPSteps != ref.DPSteps {
					t.Errorf("%s w%d mb%d: dp steps %d != scalar %d", sp.Name, workers, maxBatch, res.DPSteps, ref.DPSteps)
				}
				if res.Batches <= 0 || res.MaxBatch <= 0 {
					t.Errorf("%s w%d mb%d: batch accounting missing (%d batches, max %d)", sp.Name, workers, maxBatch, res.Batches, res.MaxBatch)
				}
				if maxBatch > 0 && res.MaxBatch > maxBatch {
					t.Errorf("%s w%d mb%d: flush of %d rows exceeds cap", sp.Name, workers, maxBatch, res.MaxBatch)
				}
				if res.ModelCalls > ref.ModelCalls {
					t.Errorf("%s w%d mb%d: batched predicts %d rows > scalar's %d calls", sp.Name, workers, maxBatch, res.ModelCalls, ref.ModelCalls)
				}
			}
		}
	}
}

// TestBatchedSingleRelation covers the degenerate one-relation spec, where the
// whole plan is one open pipeline.
func TestBatchedSingleRelation(t *testing.T) {
	_, packed, reg := plannerT3(t)
	inst, sp := workload.SyntheticJoinBench(workload.ShapeChain, 1, 64, 3)
	ref, err := DPSize(sp, NewT3Cost(packed, reg, inst, sp, NewEstOracle(inst, sp)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DPSizeBatched(sp, packed, reg, inst, NewEstOracle(inst, sp), BatchConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != ref.Cost || res.Tree.String() != ref.Tree.String() {
		t.Fatalf("single-relation mismatch: %v/%s vs %v/%s", res.Cost, res.Tree, ref.Cost, ref.Tree)
	}
}

// TestTotalMemoizationCutsCalls is the Calls() delta test for the Total memo:
// the memoized model must choose the identical plan at the identical cost
// while issuing strictly fewer predictions than the historical
// re-predict-per-Total behaviour (NoMemo), which in turn pays the classic
// >= 2x-Cout price.
func TestTotalMemoizationCutsCalls(t *testing.T) {
	_, packed, reg := plannerT3(t)
	inst, sp := workload.SyntheticJoinBench(workload.ShapeStar, 7, 256, 11)

	memo := NewT3Cost(packed, reg, inst, sp, NewEstOracle(inst, sp))
	resMemo, err := DPSize(sp, memo)
	if err != nil {
		t.Fatal(err)
	}
	noMemo := NewT3Cost(packed, reg, inst, sp, NewEstOracle(inst, sp))
	noMemo.NoMemo = true
	resNo, err := DPSize(sp, noMemo)
	if err != nil {
		t.Fatal(err)
	}
	if resMemo.Cost != resNo.Cost || resMemo.Tree.String() != resNo.Tree.String() {
		t.Fatalf("memoization changed the answer: %v/%s vs %v/%s",
			resMemo.Cost, resMemo.Tree, resNo.Cost, resNo.Tree)
	}
	if resMemo.ModelCalls >= resNo.ModelCalls {
		t.Errorf("memoized calls %d not below no-memo calls %d", resMemo.ModelCalls, resNo.ModelCalls)
	}
	coutRes, err := DPSize(sp, NewCout(NewEstOracle(inst, sp)))
	if err != nil {
		t.Fatal(err)
	}
	if resNo.ModelCalls < 2*coutRes.ModelCalls {
		t.Errorf("no-memo calls %d < 2x Cout calls %d", resNo.ModelCalls, coutRes.ModelCalls)
	}
}

// batchedSteadyStateAllocBound is the CI-guarded allocation bound on one
// steady-state batched enumeration of the chain-10 spec below (scratch warm in
// the pool). The run still constructs its per-spec featurizer and the result
// tree, both O(relations); the DP loop itself — hundreds of candidates — must
// stay allocation-free, which is what a bound far below the candidate count
// proves.
const batchedSteadyStateAllocBound = 200

// TestBatchedSteadyStateAllocs pins the allocation bound of the batched
// enumeration loop.
func TestBatchedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts inflated under -race")
	}
	_, packed, reg := plannerT3(t)
	inst, sp := workload.SyntheticJoinBench(workload.ShapeChain, 10, 256, 5)
	oracle := NewMemoOracle(NewEstOracle(inst, sp), len(sp.Rels))
	cfg := BatchConfig{Workers: 1}
	if _, err := DPSizeBatched(sp, packed, reg, inst, oracle, cfg); err != nil {
		t.Fatal(err)
	}
	res, _ := DPSizeBatched(sp, packed, reg, inst, oracle, cfg)
	avg := testing.AllocsPerRun(10, func() {
		if _, err := DPSizeBatched(sp, packed, reg, inst, oracle, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state: %.0f allocs/run over %d DP steps", avg, res.DPSteps)
	if avg > batchedSteadyStateAllocBound {
		t.Errorf("steady-state batched enumeration allocates %.0f/run over %d DP steps, bound %d",
			avg, res.DPSteps, batchedSteadyStateAllocBound)
	}
	if res.DPSteps < batchedSteadyStateAllocBound {
		t.Fatalf("spec too small for a meaningful bound: %d steps", res.DPSteps)
	}
}

// TestOracleCallCounting checks the oracle-call surfacing satellite: counts
// are exposed, memo wrappers collapse repeats, and the helper tolerates
// non-counting oracles.
func TestOracleCallCounting(t *testing.T) {
	inst, sp := workload.SyntheticJoinBench(workload.ShapeChain, 5, 128, 9)
	est := NewEstOracle(inst, sp)
	mo := NewMemoOracle(est, len(sp.Rels))
	for i := 0; i < 3; i++ {
		mo.Card(0b11)
		mo.Card(0b110)
	}
	if got := OracleCalls(mo); got != 2 {
		t.Errorf("memo oracle reports %d calls, want 2", got)
	}
	if got := OracleCalls(est); got != 2 {
		t.Errorf("est oracle reports %d calls, want 2", got)
	}
	if mo.Card(0b11) != est.Card(0b11) {
		t.Error("memo oracle changed the cardinality")
	}
	// A bare Oracle without call counting reports zero.
	if got := OracleCalls(plainOracle{}); got != 0 {
		t.Errorf("plain oracle reports %d", got)
	}
}

type plainOracle struct{}

func (plainOracle) Card(set uint64) float64 { return 1 }
