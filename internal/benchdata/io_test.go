package benchdata

import (
	"os"
	"path/filepath"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/feature"
)

// buildTinyCorpus makes a minimal corpus for persistence tests.
func buildTinyCorpus(t *testing.T) *Corpus {
	t.Helper()
	in := smallInstance(t)
	set, err := BenchmarkInstance(in, Config{PerGroup: 1, Runs: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return &Corpus{Train: []*InstanceSet{set}, Test: []*InstanceSet{{Name: "empty"}}}
}

func TestCorpusRoundtrip(t *testing.T) {
	c := buildTinyCorpus(t)
	for _, path := range []string{
		filepath.Join(t.TempDir(), "corpus.json"),
		filepath.Join(t.TempDir(), "corpus.json.gz"),
	} {
		if err := SaveCorpus(c, path); err != nil {
			t.Fatal(err)
		}
		back, err := LoadCorpus(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Train) != 1 || back.Train[0].Name != c.Train[0].Name {
			t.Fatalf("%s: structure lost", path)
		}
		orig := c.Train[0].Queries
		got := back.Train[0].Queries
		if len(got) != len(orig) {
			t.Fatalf("%s: %d queries, want %d", path, len(got), len(orig))
		}
		reg := feature.NewDefaultRegistry()
		for i := range orig {
			if got[i].Query.Name != orig[i].Query.Name || got[i].Query.Group != orig[i].Query.Group {
				t.Fatalf("query %d metadata lost", i)
			}
			if got[i].MedianTotal() != orig[i].MedianTotal() {
				t.Fatalf("query %d timings lost", i)
			}
			// The training examples derived from the loaded corpus must be
			// identical: same vectors, same targets.
			ox, oy := Examples(reg, orig[i:i+1], plan.TrueCards, 0)
			gx, gy := Examples(reg, got[i:i+1], plan.TrueCards, 0)
			if len(ox) != len(gx) {
				t.Fatalf("query %d: example count changed", i)
			}
			for p := range ox {
				if oy[p] != gy[p] {
					t.Fatalf("query %d pipeline %d: target %v != %v", i, p, gy[p], oy[p])
				}
				for f := range ox[p] {
					if ox[p][f] != gx[p][f] {
						t.Fatalf("query %d pipeline %d feature %d changed", i, p, f)
					}
				}
			}
		}
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, `{"version": 99}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(bad); err == nil {
		t.Error("unsupported version should fail")
	}
	notJSON := filepath.Join(t.TempDir(), "garbage.json")
	if err := writeFile(notJSON, "{]"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(notJSON); err == nil {
		t.Error("garbage should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
