package benchdata

import (
	"bytes"
	"encoding/binary"
	"math"

	"t3/internal/engine/plan"
	"t3/internal/workload"
)

// FromLabels converts a collected label set (internal/workload's parallel
// runner output) into benched queries, the representation the trainer and
// evaluator consume. The conversion is a pure reshaping — plans, pipeline
// decompositions, and measured durations carry over untouched — so a label
// set collected with any worker count yields the same training examples.
func FromLabels(ls *workload.LabelSet) []*BenchedQuery {
	out := make([]*BenchedQuery, 0, len(ls.Labels))
	for _, l := range ls.Labels {
		out = append(out, &BenchedQuery{
			Query: &workload.Query{
				Name:     l.Name,
				Group:    l.Group,
				Instance: ls.Instance,
				Root:     l.Root,
			},
			Pipelines:    l.Pipelines,
			RunTotals:    l.Totals,
			PipelineRuns: l.PipelineRuns,
		})
	}
	return out
}

// Fingerprint hashes the measurement-independent identity of a benched-query
// set: query names, groups, pipeline decompositions, annotated true
// cardinalities and selectivities, and the timing-run shape — never the
// measured durations. It is the same contract as workload.LabelSet's
// fingerprint: stable across worker counts and repeat runs over the same
// workload, so a registry artifact can record which held-out set its shadow
// score refers to.
func Fingerprint(benched []*BenchedQuery) uint64 {
	var buf bytes.Buffer
	for _, b := range benched {
		buf.WriteByte(0)
		buf.WriteString(b.Query.Name)
		buf.WriteByte(0)
		buf.WriteString(string(b.Query.Group))
		writeUvarint(&buf, uint64(len(b.PipelineRuns)))
		writeUvarint(&buf, uint64(len(b.Pipelines)))
		for _, pl := range b.Pipelines {
			writeUvarint(&buf, uint64(len(pl.Stages)))
			for _, s := range pl.Stages {
				writeUvarint(&buf, uint64(s.Node.Op))
				writeUvarint(&buf, uint64(s.Stage))
			}
		}
		b.Query.Root.Walk(func(n *plan.Node) {
			writeUvarint(&buf, math.Float64bits(n.OutCard.True))
			for i := range n.PredSel {
				writeUvarint(&buf, math.Float64bits(n.PredSel[i].True))
			}
		})
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range buf.Bytes() {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}
