// Package benchdata runs query workloads on the engine to collect T3's
// training and evaluation data (§4.3 of the paper).
//
// For every query it executes one "explain analyze" run that annotates true
// cardinalities, then a configurable number of timing runs whose per-pipeline
// medians become the training targets. It also assembles the per-pipeline
// feature/target examples the model trains on and provides the
// benchmark-deviation statistics of Table 3.
package benchdata

import (
	"fmt"
	"math"
	"sort"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/feature"
	"t3/internal/qerror"
	"t3/internal/workload"
)

// BenchedQuery is one query with measured execution data.
type BenchedQuery struct {
	Query *workload.Query
	// Pipelines are the decomposed pipelines of the plan (after the analyze
	// run annotated true cardinalities).
	Pipelines []*plan.Pipeline
	// RunTotals holds the total query time of each timing run.
	RunTotals []time.Duration
	// PipelineRuns[r][p] is the time of pipeline p in run r.
	PipelineRuns [][]time.Duration
}

// MedianTotal returns the median total query time over the timing runs.
func (b *BenchedQuery) MedianTotal() time.Duration {
	return medianDur(b.RunTotals)
}

// PipelineMedian returns the median time of pipeline p over the first
// `runs` timing runs (0 = all runs). Figure 14 varies `runs`.
func (b *BenchedQuery) PipelineMedian(p, runs int) time.Duration {
	if runs <= 0 || runs > len(b.PipelineRuns) {
		runs = len(b.PipelineRuns)
	}
	ts := make([]time.Duration, runs)
	for r := 0; r < runs; r++ {
		ts[r] = b.PipelineRuns[r][p]
	}
	return medianDur(ts)
}

func medianDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// Benchmark executes the query once with annotation (explain analyze), fills
// estimated cardinalities with est (if non-nil), then performs `runs` timing
// runs.
func Benchmark(q *workload.Query, runs int, est *stats.Estimator) (*BenchedQuery, error) {
	if runs < 1 {
		runs = 1
	}
	// Analyze run: annotate true cardinalities.
	if _, err := exec.Run(q.Root, true); err != nil {
		return nil, fmt.Errorf("analyze %s: %w", q.Name, err)
	}
	if est != nil {
		est.Estimate(q.Root)
	}
	b := &BenchedQuery{Query: q, Pipelines: plan.Decompose(q.Root)}
	for r := 0; r < runs; r++ {
		res, err := exec.Run(q.Root, false)
		if err != nil {
			return nil, fmt.Errorf("run %d of %s: %w", r, q.Name, err)
		}
		times := make([]time.Duration, len(res.Pipelines))
		for i, pt := range res.Pipelines {
			times[i] = pt.Duration
		}
		b.PipelineRuns = append(b.PipelineRuns, times)
		b.RunTotals = append(b.RunTotals, res.Total)
	}
	return b, nil
}

// ReleaseTables detaches base-table data from the plan so the instance can
// be garbage collected. Featurization and prediction keep working (they read
// only annotations); re-execution does not.
func (b *BenchedQuery) ReleaseTables() {
	b.Query.Root.Walk(func(n *plan.Node) { n.Table = nil })
}

// TargetTransform converts a per-tuple time in seconds into the model
// target t' = -log10(t) (§2.4, Eq. 1). Per-tuple times range from ~1e-15 s
// to ~1 s, so targets land in roughly [0, 15].
func TargetTransform(perTupleSeconds float64) float64 {
	const minT = 1e-15
	if perTupleSeconds < minT {
		perTupleSeconds = minT
	}
	return -math.Log10(perTupleSeconds)
}

// InverseTarget converts a model output back to a per-tuple time in seconds.
func InverseTarget(t float64) float64 { return math.Pow(10, -t) }

// Examples turns benched queries into per-pipeline training examples:
// feature vectors (under the given cardinality mode) and transformed
// per-tuple targets computed from the median of the first `runs` timing runs
// (0 = all).
func Examples(reg *feature.Registry, benched []*BenchedQuery, mode plan.CardMode, runs int) (xs [][]float64, ys []float64) {
	for _, b := range benched {
		for pi, p := range b.Pipelines {
			xs = append(xs, reg.PipelineVector(p, mode))
			card := feature.SourceCard(p, plan.TrueCards)
			t := b.PipelineMedian(pi, runs).Seconds() / card
			ys = append(ys, TargetTransform(t))
		}
	}
	return xs, ys
}

// DeviationStats computes the benchmark-deviation q-errors of Table 3: for
// each query, consider the most consistent two-thirds of the timing runs and
// report the q-error of the one furthest from the median.
func DeviationStats(benched []*BenchedQuery) qerror.Summary {
	var es []float64
	for _, b := range benched {
		if len(b.RunTotals) < 3 {
			continue
		}
		med := b.MedianTotal().Seconds()
		if med <= 0 {
			continue
		}
		devs := make([]float64, len(b.RunTotals))
		for i, r := range b.RunTotals {
			devs[i] = qerror.QError(r.Seconds(), med)
		}
		sort.Float64s(devs)
		keep := (len(devs)*2 + 2) / 3 // ceil(2/3 n): closest to the median
		es = append(es, devs[keep-1])
	}
	return qerror.Summarize(es)
}

// InstanceSet groups the benched queries of one database instance.
type InstanceSet struct {
	Name    string
	Queries []*BenchedQuery
}

// Split returns the subset of queries in the given structure group.
func (s *InstanceSet) Split(g workload.Group) []*BenchedQuery {
	var out []*BenchedQuery
	for _, b := range s.Queries {
		if b.Query.Group == g {
			out = append(out, b)
		}
	}
	return out
}

// Config sizes corpus construction.
type Config struct {
	// Scale multiplies instance sizes (1 = the full default).
	Scale float64
	// PerGroup is the number of generated queries per structure group per
	// instance (the paper uses 40).
	PerGroup int
	// Runs is the number of timing runs per query (the paper uses 10 but
	// shows 1 suffices; our default is 3).
	Runs int
	// Seed drives all generators.
	Seed int64
	// ReleaseTables drops base-table data after benchmarking each instance
	// to bound memory usage. JOB/imdb instances are kept when KeepIMDB is
	// set (the join-ordering experiments re-execute plans).
	ReleaseTables bool
	// Progress, when non-nil, receives one line per benchmarked instance.
	Progress func(string)
}

// DefaultConfig returns the full-size corpus configuration used by
// cmd/t3train.
func DefaultConfig() Config {
	return Config{Scale: 1, PerGroup: 8, Runs: 3, Seed: 1, ReleaseTables: true}
}

// Corpus is the full benchmarked dataset: per-instance training sets and the
// held-out TPC-DS test sets.
type Corpus struct {
	Train []*InstanceSet
	Test  []*InstanceSet
}

// AllTrain returns the concatenated training queries.
func (c *Corpus) AllTrain() []*BenchedQuery {
	var out []*BenchedQuery
	for _, s := range c.Train {
		out = append(out, s.Queries...)
	}
	return out
}

// AllTest returns the concatenated test queries.
func (c *Corpus) AllTest() []*BenchedQuery {
	var out []*BenchedQuery
	for _, s := range c.Test {
		out = append(out, s.Queries...)
	}
	return out
}

// TrainExcept returns training queries from all instances except those named
// (used for leave-one-out evaluation and the JOB experiments).
func (c *Corpus) TrainExcept(names ...string) []*BenchedQuery {
	skip := make(map[string]bool, len(names))
	for _, n := range names {
		skip[n] = true
	}
	var out []*BenchedQuery
	for _, s := range c.Train {
		if !skip[s.Name] {
			out = append(out, s.Queries...)
		}
	}
	return out
}

// BenchmarkInstance generates and benchmarks all queries of one instance:
// the 16 random groups plus any fixed benchmark queries appropriate for its
// schema.
func BenchmarkInstance(in *workload.Instance, cfg Config) (*InstanceSet, error) {
	gen := workload.GenConfig{PerGroup: cfg.PerGroup, Seed: cfg.Seed + int64(len(in.Name))*31}
	qs := workload.GenerateQueries(in, gen)
	switch {
	case in.Table("lineitem") != nil && in.Table("orders") != nil:
		qs = append(qs, workload.TPCHBenchmarkQueries(in)...)
	case in.Table("store_sales") != nil:
		qs = append(qs, workload.TPCDSBenchmarkQueries(in)...)
	}
	est := &stats.Estimator{DB: in.Stats}
	set := &InstanceSet{Name: in.Name}
	for _, q := range qs {
		b, err := Benchmark(q, cfg.Runs, est)
		if err != nil {
			return nil, err
		}
		set.Queries = append(set.Queries, b)
	}
	return set, nil
}

// BuildCorpus generates, executes, and benchmarks the full training and test
// workloads. Deterministic given cfg.
func BuildCorpus(cfg Config) (*Corpus, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	suite := workload.SuiteConfig{Scale: cfg.Scale, Seed: cfg.Seed}
	c := &Corpus{}
	for _, mk := range workload.TrainMakers(suite) {
		in := mk.Make()
		set, err := BenchmarkInstance(in, cfg)
		if err != nil {
			return nil, fmt.Errorf("train instance %s: %w", mk.Name, err)
		}
		if cfg.ReleaseTables {
			for _, b := range set.Queries {
				b.ReleaseTables()
			}
		}
		c.Train = append(c.Train, set)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("benchmarked %s: %d queries", set.Name, len(set.Queries)))
		}
	}
	for _, mk := range workload.TestMakers(suite) {
		in := mk.Make()
		set, err := BenchmarkInstance(in, cfg)
		if err != nil {
			return nil, fmt.Errorf("test instance %s: %w", mk.Name, err)
		}
		if cfg.ReleaseTables {
			for _, b := range set.Queries {
				b.ReleaseTables()
			}
		}
		c.Test = append(c.Test, set)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("benchmarked %s: %d queries", set.Name, len(set.Queries)))
		}
	}
	return c, nil
}
