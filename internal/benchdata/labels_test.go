package benchdata

import (
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/workload"
)

func collectSmall(t *testing.T, workers int) *workload.LabelSet {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_fromlabels", 0.002, 17))
	ls, err := workload.CollectLabels(in, workload.CollectConfig{
		Workers: workers, Runs: 2, PerGroup: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestFromLabels(t *testing.T) {
	ls := collectSmall(t, 2)
	benched := FromLabels(ls)
	if len(benched) != len(ls.Labels) {
		t.Fatalf("FromLabels produced %d queries, want %d", len(benched), len(ls.Labels))
	}
	for i, b := range benched {
		l := ls.Labels[i]
		if b.Query.Name != l.Name || b.Query.Group != l.Group || b.Query.Instance != ls.Instance {
			t.Fatalf("query %d identity mismatch: %+v vs label %s/%s", i, b.Query, l.Name, l.Group)
		}
		if b.Query.Root != l.Root || len(b.Pipelines) != len(l.Pipelines) {
			t.Fatalf("query %d plan not carried over", i)
		}
		if len(b.PipelineRuns) != len(l.PipelineRuns) || len(b.RunTotals) != len(l.Totals) {
			t.Fatalf("query %d timing shape mismatch", i)
		}
	}
	// The converted set must featurize: Examples is what the trainer calls.
	reg := feature.NewDefaultRegistry()
	xs, ys := Examples(reg, benched, plan.TrueCards, 0)
	if len(xs) == 0 || len(xs) != len(ys) {
		t.Fatalf("Examples over converted labels = %d/%d", len(xs), len(ys))
	}
}

func TestFingerprintStableAcrossWorkers(t *testing.T) {
	a := Fingerprint(FromLabels(collectSmall(t, 1)))
	b := Fingerprint(FromLabels(collectSmall(t, 4)))
	if a != b {
		t.Fatalf("fingerprint varies with worker count: %#x vs %#x", a, b)
	}
	// And it must distinguish different workloads.
	in := workload.MustGenerate(workload.TPCHSpec("tpch_fromlabels_other", 0.002, 18))
	ls, err := workload.CollectLabels(in, workload.CollectConfig{Runs: 1, PerGroup: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c := Fingerprint(FromLabels(ls)); c == a {
		t.Fatal("different workloads share a fingerprint")
	}
}
