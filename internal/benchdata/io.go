package benchdata

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/planio"
	"t3/internal/workload"
)

// Corpus persistence: benchmarking is the expensive step (the paper reports
// hours of query execution vs seconds of training, §6 "Hardware Specific
// Model"). Saving the benchmarked corpus — annotated plans plus measured
// per-pipeline times — lets models be retrained, re-configured, and ablated
// without re-running a single query. Plans are stored in the planio JSON
// format, so loaded corpora are featurizable but not executable.

// corpusJSON is the serialized corpus document.
type corpusJSON struct {
	Version int               `json:"version"`
	Train   []instanceSetJSON `json:"train"`
	Test    []instanceSetJSON `json:"test"`
}

type instanceSetJSON struct {
	Name    string      `json:"name"`
	Queries []queryJSON `json:"queries"`
}

type queryJSON struct {
	Name     string       `json:"name"`
	Group    string       `json:"group"`
	Instance string       `json:"instance"`
	Plan     *planio.Node `json:"plan"`
	// RunTotalsNS are total query times per timing run, in nanoseconds.
	RunTotalsNS []int64 `json:"run_totals_ns"`
	// PipelineRunsNS[r][p] is pipeline p's time in run r, in nanoseconds.
	PipelineRunsNS [][]int64 `json:"pipeline_runs_ns"`
}

func encodeSet(s *InstanceSet) instanceSetJSON {
	out := instanceSetJSON{Name: s.Name}
	for _, b := range s.Queries {
		q := queryJSON{
			Name:     b.Query.Name,
			Group:    string(b.Query.Group),
			Instance: b.Query.Instance,
			Plan:     planio.Encode(b.Query.Root),
		}
		for _, d := range b.RunTotals {
			q.RunTotalsNS = append(q.RunTotalsNS, d.Nanoseconds())
		}
		for _, run := range b.PipelineRuns {
			row := make([]int64, len(run))
			for i, d := range run {
				row[i] = d.Nanoseconds()
			}
			q.PipelineRunsNS = append(q.PipelineRunsNS, row)
		}
		out.Queries = append(out.Queries, q)
	}
	return out
}

func decodeSet(s instanceSetJSON) (*InstanceSet, error) {
	out := &InstanceSet{Name: s.Name}
	for _, q := range s.Queries {
		root, err := planio.Decode(q.Plan)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		b := &BenchedQuery{
			Query: &workload.Query{
				Name:     q.Name,
				Group:    workload.Group(q.Group),
				Instance: q.Instance,
				Root:     root,
			},
			Pipelines: plan.Decompose(root),
		}
		for _, ns := range q.RunTotalsNS {
			b.RunTotals = append(b.RunTotals, time.Duration(ns))
		}
		for _, row := range q.PipelineRunsNS {
			run := make([]time.Duration, len(row))
			for i, ns := range row {
				run[i] = time.Duration(ns)
			}
			if len(run) != len(b.Pipelines) {
				return nil, fmt.Errorf("query %s: %d pipeline times for %d pipelines", q.Name, len(run), len(b.Pipelines))
			}
			b.PipelineRuns = append(b.PipelineRuns, run)
		}
		out.Queries = append(out.Queries, b)
	}
	return out, nil
}

// SaveCorpus writes the corpus to path as (optionally gzipped) JSON. A
// ".gz" suffix enables compression.
func SaveCorpus(c *Corpus, path string) error {
	doc := corpusJSON{Version: 1}
	for _, s := range c.Train {
		doc.Train = append(doc.Train, encodeSet(s))
	}
	for _, s := range c.Test {
		doc.Test = append(doc.Test, encodeSet(s))
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchdata: create corpus: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := json.NewEncoder(w).Encode(&doc); err != nil {
		return fmt.Errorf("benchdata: encode corpus: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadCorpus reads a corpus written by SaveCorpus. Loaded plans are
// featurizable (training, prediction, experiments) but not executable.
func LoadCorpus(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchdata: open corpus: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("benchdata: gzip: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	var doc corpusJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("benchdata: parse corpus %s: %w", path, err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("benchdata: unsupported corpus version %d", doc.Version)
	}
	c := &Corpus{}
	for _, s := range doc.Train {
		set, err := decodeSet(s)
		if err != nil {
			return nil, err
		}
		c.Train = append(c.Train, set)
	}
	for _, s := range doc.Test {
		set, err := decodeSet(s)
		if err != nil {
			return nil, err
		}
		c.Test = append(c.Test, set)
	}
	return c, nil
}
