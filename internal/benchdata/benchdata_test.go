package benchdata

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/feature"
	"t3/internal/workload"
)

func smallInstance(t *testing.T) *workload.Instance {
	t.Helper()
	return workload.MustGenerate(workload.TPCHSpec("tpch_bd", 0.01, 71))
}

func TestBenchmarkCollectsPerPipelineTimes(t *testing.T) {
	in := smallInstance(t)
	q := workload.TPCHBenchmarkQueries(in)[0]
	est := &stats.Estimator{DB: in.Stats}
	b, err := Benchmark(q, 4, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.RunTotals) != 4 {
		t.Fatalf("runs = %d", len(b.RunTotals))
	}
	if len(b.PipelineRuns) != 4 {
		t.Fatalf("pipeline runs = %d", len(b.PipelineRuns))
	}
	for r, times := range b.PipelineRuns {
		if len(times) != len(b.Pipelines) {
			t.Fatalf("run %d: %d times for %d pipelines", r, len(times), len(b.Pipelines))
		}
	}
	if b.MedianTotal() <= 0 {
		t.Error("median total must be positive")
	}
	// True cards and estimates must be annotated.
	if q.Root.OutCard.True < 0 || q.Root.OutCard.Est <= 0 {
		t.Errorf("annotations missing: %+v", q.Root.OutCard)
	}
}

func TestPipelineMedian(t *testing.T) {
	b := &BenchedQuery{
		PipelineRuns: [][]time.Duration{
			{10 * time.Microsecond},
			{30 * time.Microsecond},
			{20 * time.Microsecond},
		},
	}
	if got := b.PipelineMedian(0, 0); got != 20*time.Microsecond {
		t.Errorf("median over all runs = %v", got)
	}
	if got := b.PipelineMedian(0, 1); got != 10*time.Microsecond {
		t.Errorf("median over first run = %v", got)
	}
	if got := b.PipelineMedian(0, 2); got != 30*time.Microsecond {
		t.Errorf("median over two runs = %v (upper median)", got)
	}
	if got := b.PipelineMedian(0, 99); got != 20*time.Microsecond {
		t.Errorf("overlong run count should clamp: %v", got)
	}
}

func TestTargetTransformRoundtrip(t *testing.T) {
	f := func(exp float64) bool {
		// Per-tuple times from 1e-14 to 1 second.
		tt := math.Pow(10, -math.Mod(math.Abs(exp), 14))
		y := TargetTransform(tt)
		back := InverseTarget(y)
		return math.Abs(back-tt) < 1e-9*tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Range claim of the paper: targets land in about [0, 15].
	if y := TargetTransform(1); y != 0 {
		t.Errorf("transform(1s) = %v, want 0", y)
	}
	if y := TargetTransform(1e-15); math.Abs(y-15) > 1e-9 {
		t.Errorf("transform(1e-15) = %v, want 15", y)
	}
	// Sub-floor values clamp instead of exploding.
	if y := TargetTransform(1e-30); math.Abs(y-15) > 1e-9 {
		t.Errorf("transform(1e-30) = %v, want clamp to 15", y)
	}
}

func TestExamplesShape(t *testing.T) {
	in := smallInstance(t)
	set, err := BenchmarkInstance(in, Config{PerGroup: 1, Runs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reg := feature.NewDefaultRegistry()
	xs, ys := Examples(reg, set.Queries, plan.TrueCards, 0)
	if len(xs) != len(ys) {
		t.Fatal("example count mismatch")
	}
	wantRows := 0
	for _, b := range set.Queries {
		wantRows += len(b.Pipelines)
	}
	if len(xs) != wantRows {
		t.Fatalf("%d examples for %d pipelines", len(xs), wantRows)
	}
	for i, y := range ys {
		if math.IsNaN(y) || y < 0 || y > 16 {
			t.Errorf("target %d = %v out of expected range", i, y)
		}
	}
}

func TestDeviationStats(t *testing.T) {
	mk := func(times ...time.Duration) *BenchedQuery {
		return &BenchedQuery{RunTotals: times}
	}
	// Identical runs deviate by exactly 1.0.
	s := DeviationStats([]*BenchedQuery{
		mk(time.Millisecond, time.Millisecond, time.Millisecond),
	})
	if s.N != 1 || s.Avg != 1 {
		t.Errorf("identical runs: %+v", s)
	}
	// One run 2x the median, rest exact: with 3 runs, keep ceil(2) = 2
	// closest; the furthest kept deviates 1.0 (the outlier is dropped...
	// unless it is within the kept set).
	s = DeviationStats([]*BenchedQuery{
		mk(time.Millisecond, time.Millisecond, 2*time.Millisecond),
	})
	if s.N != 1 {
		t.Fatalf("n = %d", s.N)
	}
	if s.Max > 1.01 {
		t.Errorf("outlier should be trimmed: %+v", s)
	}
	// Queries with fewer than 3 runs are skipped.
	s = DeviationStats([]*BenchedQuery{mk(time.Millisecond)})
	if s.N != 0 {
		t.Errorf("short queries should be skipped: %+v", s)
	}
}

func TestReleaseTablesPreservesFeaturization(t *testing.T) {
	in := smallInstance(t)
	q := workload.TPCHBenchmarkQueries(in)[1]
	est := &stats.Estimator{DB: in.Stats}
	b, err := Benchmark(q, 2, est)
	if err != nil {
		t.Fatal(err)
	}
	reg := feature.NewDefaultRegistry()
	before, _ := reg.PlanVectors(q.Root, plan.TrueCards)
	b.ReleaseTables()
	after, _ := reg.PlanVectors(q.Root, plan.TrueCards)
	for i := range before {
		for f := range before[i] {
			if before[i][f] != after[i][f] {
				t.Fatalf("feature changed after table release")
			}
		}
	}
}

func TestBuildCorpusTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build in short mode")
	}
	var progress int
	c, err := BuildCorpus(Config{
		Scale: 0.02, PerGroup: 1, Runs: 1, Seed: 31, ReleaseTables: true,
		Progress: func(string) { progress++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train) != 22 {
		t.Errorf("train instances = %d, want 22", len(c.Train))
	}
	if len(c.Test) != 3 {
		t.Errorf("test instances = %d", len(c.Test))
	}
	if progress != 25 {
		t.Errorf("progress callbacks = %d", progress)
	}
	// TrainExcept removes exactly the named instance's queries.
	all := len(c.AllTrain())
	without := len(c.TrainExcept("imdb"))
	var imdbCount int
	for _, s := range c.Train {
		if s.Name == "imdb" {
			imdbCount = len(s.Queries)
		}
	}
	if without != all-imdbCount {
		t.Errorf("TrainExcept: %d != %d - %d", without, all, imdbCount)
	}
}

func TestSplitByGroup(t *testing.T) {
	in := smallInstance(t)
	set, err := BenchmarkInstance(in, Config{PerGroup: 2, Runs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	se := set.Split(workload.GroupSe)
	if len(se) == 0 {
		t.Fatal("no Se queries")
	}
	for _, b := range se {
		if b.Query.Group != workload.GroupSe {
			t.Errorf("wrong group %s", b.Query.Group)
		}
	}
	fixed := set.Split(workload.GroupFixed)
	if len(fixed) == 0 {
		t.Error("TPC-H instance should include fixed benchmark queries")
	}
}
