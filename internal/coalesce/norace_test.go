//go:build !race

package coalesce

const raceEnabled = false
