// Package coalesce batches concurrent single-plan predict requests into
// one batched prediction call.
//
// The packed tier predicts a plan in ~µs, but every serving request still
// pays per-call overhead: scratch checkout, pool dispatch, instrumentation.
// Under concurrency those calls arrive together, so the serving tier
// gathers requests that are in flight at the same instant — bounded by a
// maximum batch size and a maximum wait — and dispatches them as ONE
// Model.PredictBatchInto call over pooled scratch. Amortization rises with
// load: an idle server adds at most MaxWait to a lone request, a busy one
// fills batches before the timer fires.
//
// The mechanism is leader-based, like singleflight: the first request to
// find no open batch becomes the leader, opens one, and waits for it to
// fill or time out; followers append themselves and block on the batch's
// completion. Batches, their slices, and their timers are pooled, so the
// steady-state coalesced path performs no allocation in this package.
package coalesce

import (
	"sync"
	"sync/atomic"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/obs"
)

// DispatchFunc evaluates a batch of plans: out[i] receives the predicted
// execution time of roots[i]. The serving tier passes a closure over the
// current model's PredictBatchInto.
type DispatchFunc func(roots []*plan.Node, out []time.Duration)

// Batcher coalesces concurrent Predict calls into batched dispatches. Safe
// for concurrent use.
type Batcher struct {
	dispatch DispatchFunc
	maxBatch int
	maxWait  time.Duration

	mu   sync.Mutex
	cur  *batch
	pool sync.Pool
}

// batch is one coalescing window. It is recycled through the Batcher's
// pool once every participant has read its result.
type batch struct {
	roots []*plan.Node
	outs  []time.Duration
	wg    sync.WaitGroup // released by the leader after dispatch
	refs  atomic.Int32   // participants still to read their result
	// ready (capacity 1) wakes the leader: a filler sends when maxBatch is
	// reached, the timer's AfterFunc sends when maxWait expires. Blocking
	// on a plain channel receive instead of a timer-channel select keeps
	// the leader wait allocation-free.
	ready chan struct{}
	timer *time.Timer
}

// New returns a Batcher dispatching at most maxBatch requests per call and
// holding the first request of a window at most maxWait. maxBatch < 1
// defaults to 64; maxWait <= 0 defaults to 20µs.
func New(dispatch DispatchFunc, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 64
	}
	if maxWait <= 0 {
		maxWait = 20 * time.Microsecond
	}
	return &Batcher{dispatch: dispatch, maxBatch: maxBatch, maxWait: maxWait}
}

// getBatch returns a reset batch from the pool.
func (b *Batcher) getBatch() *batch {
	bt, ok := b.pool.Get().(*batch)
	if !ok {
		bt = &batch{ready: make(chan struct{}, 1)}
		bt.timer = time.AfterFunc(time.Hour, func() { bt.wake() })
		bt.timer.Stop()
	}
	bt.roots = bt.roots[:0]
	bt.outs = bt.outs[:0]
	select { // drain a stale wake-up from a previous window
	case <-bt.ready:
	default:
	}
	return bt
}

// wake signals the batch's leader, dropping the token if one is already
// pending. A late timer firing into a recycled batch at worst closes the
// next window early — a smaller batch, never a wrong result.
func (bt *batch) wake() {
	select {
	case bt.ready <- struct{}{}:
	default:
	}
}

// Predict coalesces one prediction request. It blocks until the request's
// batch has been dispatched and returns this plan's predicted time.
func (b *Batcher) Predict(root *plan.Node) time.Duration {
	b.mu.Lock()
	bt := b.cur
	leader := bt == nil
	if leader {
		bt = b.getBatch()
		bt.wg.Add(1)
		b.cur = bt
	}
	idx := len(bt.roots)
	bt.roots = append(bt.roots, root)
	bt.outs = append(bt.outs, 0)
	bt.refs.Add(1)
	if len(bt.roots) == b.maxBatch {
		// Window full: detach so the next request opens a fresh one, and
		// wake the leader early.
		b.cur = nil
		bt.wake()
	}
	b.mu.Unlock()

	if leader {
		bt.timer.Reset(b.maxWait)
		<-bt.ready
		bt.timer.Stop()
		b.mu.Lock()
		if b.cur == bt {
			b.cur = nil
		}
		b.mu.Unlock()
		b.dispatch(bt.roots, bt.outs)
		obs.ServeCoalesceBatches.Inc()
		obs.ServeCoalesceBatchSize.Record(uint64(len(bt.roots)))
		bt.wg.Done()
	} else {
		bt.wg.Wait()
	}

	v := bt.outs[idx]
	if bt.refs.Add(-1) == 0 {
		// Last participant out recycles the batch.
		b.pool.Put(bt)
	}
	return v
}
