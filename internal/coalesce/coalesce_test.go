package coalesce

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"t3/internal/engine/plan"
)

// fakeDispatch predicts a value derived from the node's ScanCard, so every
// request can verify it got ITS result back, and records batch sizes.
type fakeDispatch struct {
	mu      sync.Mutex
	batches []int
	calls   atomic.Int64
}

func (f *fakeDispatch) dispatch(roots []*plan.Node, out []time.Duration) {
	f.calls.Add(1)
	f.mu.Lock()
	f.batches = append(f.batches, len(roots))
	f.mu.Unlock()
	for i, r := range roots {
		out[i] = time.Duration(r.ScanCard)
	}
}

func node(v float64) *plan.Node {
	return &plan.Node{Op: plan.TableScanOp, ScanCard: v}
}

func TestSingleRequest(t *testing.T) {
	f := &fakeDispatch{}
	b := New(f.dispatch, 8, 100*time.Microsecond)
	if got := b.Predict(node(42)); got != 42 {
		t.Fatalf("got %v, want 42", got)
	}
	if f.calls.Load() != 1 {
		t.Fatalf("%d dispatches, want 1", f.calls.Load())
	}
}

// TestEveryRequestGetsItsOwnResult drives concurrent clients and checks
// result routing under coalescing (run with -race).
func TestEveryRequestGetsItsOwnResult(t *testing.T) {
	f := &fakeDispatch{}
	b := New(f.dispatch, 16, 200*time.Microsecond)
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				want := float64(g*perG + i + 1)
				if got := b.Predict(node(want)); got != time.Duration(want) {
					t.Errorf("g%d i%d: got %v, want %v", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	f.mu.Lock()
	for _, n := range f.batches {
		if n < 1 || n > 16 {
			t.Errorf("batch size %d outside [1,16]", n)
		}
		total += n
	}
	f.mu.Unlock()
	if total != goroutines*perG {
		t.Fatalf("dispatched %d requests, want %d", total, goroutines*perG)
	}
}

// TestCoalescingAmortizes checks that concurrent load actually forms
// multi-request batches: far fewer dispatches than requests.
func TestCoalescingAmortizes(t *testing.T) {
	f := &fakeDispatch{}
	// Generous wait so slow CI schedulers still coalesce.
	b := New(f.dispatch, 64, 2*time.Millisecond)
	const goroutines, perG = 32, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Predict(node(float64(g + 1)))
			}
		}(g)
	}
	wg.Wait()
	requests := int64(goroutines * perG)
	calls := f.calls.Load()
	if calls >= requests {
		t.Fatalf("no amortization: %d dispatches for %d requests", calls, requests)
	}
	t.Logf("%d requests in %d dispatches (mean batch %.1f)",
		requests, calls, float64(requests)/float64(calls))
}

func TestMaxBatchDetachesEarly(t *testing.T) {
	f := &fakeDispatch{}
	// Long wait: only the size bound can close windows quickly.
	b := New(f.dispatch, 4, 50*time.Millisecond)
	const n = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Predict(node(float64(i + 1)))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 16 requests in batches of ≤4 → ≥4 dispatches; if every window waited
	// out its 50ms timer sequentially this would take ~200ms, but full
	// batches dispatch immediately. Allow two timer windows of slack for
	// stragglers that miss a closing batch.
	if elapsed > 120*time.Millisecond {
		t.Fatalf("full batches did not dispatch early: took %v", elapsed)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, sz := range f.batches {
		if sz > 4 {
			t.Fatalf("batch of %d exceeds maxBatch 4", sz)
		}
	}
}

func TestDefaults(t *testing.T) {
	b := New(func(_ []*plan.Node, out []time.Duration) {
		for i := range out {
			out[i] = 1
		}
	}, 0, 0)
	if b.maxBatch != 64 || b.maxWait != 20*time.Microsecond {
		t.Fatalf("defaults = (%d, %v)", b.maxBatch, b.maxWait)
	}
	if b.Predict(node(1)) != 1 {
		t.Fatal("default batcher broken")
	}
}

// TestSequentialSteadyStateIsAllocationFree guards the pooled-batch path:
// after warm-up a lone caller's coalesced predict performs no allocations
// in this package.
func TestSequentialSteadyStateIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	f := &fakeDispatch{}
	f.batches = make([]int, 0, 4096)
	b := New(f.dispatch, 8, 10*time.Microsecond)
	n := node(7)
	for i := 0; i < 8; i++ {
		b.Predict(n)
	}
	allocs := testing.AllocsPerRun(200, func() { b.Predict(n) })
	// The fake dispatch itself appends to f.batches (pre-sized above); the
	// batcher must add nothing.
	if allocs > 0 {
		t.Fatalf("steady-state Predict allocates %.2f allocs/op, want 0", allocs)
	}
}
