// Command t3loadgen drives load against a running t3serve and reports
// throughput and latency quantiles, for benchmarking the serving tier.
//
// Usage:
//
//	t3loadgen [-addr localhost:8080] [-proto json|bin|tcp] [-concurrency 8]
//	          [-duration 10s] [-open 0] [-cards true|est] [-distinct 0]
//	          [-name label] [-out BENCH_serve.json]
//
// Protocols:
//
//	json   POST /predict with a planio JSON body (the baseline).
//	bin    POST /predict.bin with a binary wire frame.
//	tcp    the raw framed wire protocol; each worker owns one connection
//	       (-addr must then point at t3serve's -tcp listener).
//
// The workload is the annotated TPC-H benchmark query set from
// internal/workload, serialized once up front so the generator measures the
// server, not itself. -distinct N cycles through only the first N plans
// (N=1 maximizes prediction-cache hits; 0 = all plans).
//
// By default workers run closed-loop: each sends its next request as soon
// as the previous response arrives. -open R paces request starts at R
// requests/second spread across workers instead, modelling open-loop
// arrivals (a worker that falls behind its schedule fires immediately,
// so the achieved rate can sag below R when the server saturates).
//
// Results are printed as an indented JSON object; -out appends one JSON
// line per run in the shared t3/metrics-snapshot/v1 schema (the same shape
// t3predict/t3bench -json and t3serve /metrics.json emit): the run record
// under "run", the generator's own latency metrics under "metrics". Records
// from repeated runs therefore diff uniformly against server-side
// snapshots captured next to them (see scripts/bench_serve.sh).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/planio"
	"t3/internal/wire"
	"t3/internal/workload"
)

// snapshotOut is the t3/metrics-snapshot/v1 envelope written to -out: one
// run record plus the client-side metric registry. Flattened run fields
// (name, qps, errors, ...) stay on one JSON line per run, so existing
// grep/sed consumers keep working.
type snapshotOut struct {
	Schema  string       `json:"schema"`
	Name    string       `json:"name"`
	Run     result       `json:"run"`
	Metrics obs.Snapshot `json:"metrics"`
}

// snapshotSchema identifies the shared snapshot schema version.
const snapshotSchema = "t3/metrics-snapshot/v1"

// result is the JSON record of one load-generation run.
type result struct {
	Name        string  `json:"name"`
	Proto       string  `json:"proto"`
	Addr        string  `json:"addr"`
	Concurrency int     `json:"concurrency"`
	OpenQPS     float64 `json:"open_qps,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	MeanUs      float64 `json:"mean_us"`
}

// workload pre-serialized per protocol.
type payloads struct {
	json  [][]byte // planio JSON bodies
	frame [][]byte // wire frames (header + payload)
}

func buildPayloads(mode plan.CardMode, distinct int) (*payloads, error) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_loadgen", 0.01, 3))
	qs := workload.TPCHBenchmarkQueries(in)
	if distinct > 0 && distinct < len(qs) {
		qs = qs[:distinct]
	}
	p := &payloads{}
	for _, q := range qs {
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			return nil, err
		}
		j, err := planio.Marshal(q.Root)
		if err != nil {
			return nil, err
		}
		p.json = append(p.json, j)
		p.frame = append(p.frame, wire.AppendFrame(nil, q.Root, mode))
	}
	return p, nil
}

// sender issues one request with payload index i and returns an error on
// any transport or server failure.
type sender interface {
	send(i int) error
	close()
}

// jsonSender posts planio JSON to /predict (or binary frames to
// /predict.bin when bin is set) over a shared keep-alive HTTP client.
type jsonSender struct {
	url    string
	client *http.Client
	p      *payloads
	bin    bool
}

func (s *jsonSender) send(i int) error {
	var body []byte
	if s.bin {
		body = s.p.frame[i]
	} else {
		body = s.p.json[i]
	}
	resp, err := s.client.Post(s.url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	if s.bin {
		if _, err := wire.ParseResponse(data); err != nil {
			return err
		}
	}
	return nil
}

func (s *jsonSender) close() { s.client.CloseIdleConnections() }

// tcpSender owns one wire-protocol connection; requests are serialized on
// it (one in flight), which is what per-request latency measurement needs.
type tcpSender struct {
	conn net.Conn
	p    *payloads
	resp [wire.HeaderSize + 8]byte
}

func newTCPSender(addr string, p *payloads) (*tcpSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpSender{conn: conn, p: p}, nil
}

func (s *tcpSender) send(i int) error {
	if _, err := s.conn.Write(s.p.frame[i]); err != nil {
		return err
	}
	if _, err := io.ReadFull(s.conn, s.resp[:]); err != nil {
		return err
	}
	_, err := wire.ParseResponse(s.resp[:])
	return err
}

func (s *tcpSender) close() { _ = s.conn.Close() }

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "server address (host:port)")
		proto       = flag.String("proto", "json", "protocol: json|bin|tcp")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		duration    = flag.Duration("duration", 10*time.Second, "measurement duration")
		warmup      = flag.Duration("warmup", time.Second, "warm-up period excluded from stats")
		openQPS     = flag.Float64("open", 0, "open-loop request rate in req/s (0 = closed loop)")
		cards       = flag.String("cards", "true", "cardinality annotations: true|est")
		distinct    = flag.Int("distinct", 0, "cycle only the first N distinct plans (0 = all)")
		name        = flag.String("name", "", "label recorded with the result")
		out         = flag.String("out", "", "append the result as one JSON line to this file")
	)
	flag.Parse()

	mode := plan.TrueCards
	if *cards == "est" {
		mode = plan.EstCards
	}
	pl, err := buildPayloads(mode, *distinct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building workload:", err)
		os.Exit(1)
	}

	makeSender := func() (sender, error) {
		switch *proto {
		case "json", "bin":
			tr := &http.Transport{
				MaxIdleConns:        *concurrency * 2,
				MaxIdleConnsPerHost: *concurrency * 2,
			}
			path := "/predict"
			if *proto == "bin" {
				path = "/predict.bin"
			}
			return &jsonSender{
				url:    "http://" + *addr + path + "?cards=" + *cards,
				client: &http.Client{Transport: tr, Timeout: 30 * time.Second},
				p:      pl,
				bin:    *proto == "bin",
			}, nil
		case "tcp":
			return newTCPSender(*addr, pl)
		default:
			return nil, fmt.Errorf("unknown -proto %q", *proto)
		}
	}

	// Client-side metrics live in their own registry (not obs.Default) so
	// the snapshot written to -out holds exactly the generator's view:
	// latency as observed through the protocol stack, plus run totals.
	reg := obs.NewRegistry()
	var (
		requests atomic.Int64
		errs     atomic.Int64
		hist     = reg.NewHistogram("t3_loadgen_latency_seconds",
			"Client-observed request latency.", obs.UnitNanoseconds)
		lgRequests = reg.NewCounter("t3_loadgen_requests_total",
			"Requests measured (after warm-up).")
		lgErrors = reg.NewCounter("t3_loadgen_errors_total",
			"Requests that failed.")
		lgQPS = reg.NewGauge("t3_loadgen_qps",
			"Achieved throughput of the run.")
		wg sync.WaitGroup
	)
	measureFrom := time.Now().Add(*warmup)
	deadline := measureFrom.Add(*duration)
	interval := time.Duration(0)
	if *openQPS > 0 {
		interval = time.Duration(float64(*concurrency) / *openQPS * float64(time.Second))
	}

	for w := 0; w < *concurrency; w++ {
		s, err := makeSender()
		if err != nil {
			fmt.Fprintln(os.Stderr, "connecting:", err)
			os.Exit(1)
		}
		wg.Add(1)
		go func(w int, s sender) {
			defer wg.Done()
			defer s.close()
			i := w // stagger plan cycling across workers
			next := time.Now()
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if interval > 0 {
					if now.Before(next) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(interval)
				}
				start := time.Now()
				err := s.send(i % len(pl.frame))
				elapsed := time.Since(start)
				if start.After(measureFrom) {
					requests.Add(1)
					if err != nil {
						errs.Add(1)
					} else {
						hist.Observe(elapsed)
					}
				}
				if err != nil && *proto == "tcp" {
					// A torn connection cannot carry further requests.
					return
				}
				i++
			}
		}(w, s)
	}
	wg.Wait()

	snap := hist.Snapshot()
	res := result{
		Name:        *name,
		Proto:       *proto,
		Addr:        *addr,
		Concurrency: *concurrency,
		OpenQPS:     *openQPS,
		DurationS:   duration.Seconds(),
		Requests:    requests.Load(),
		Errors:      errs.Load(),
		QPS:         float64(requests.Load()) / duration.Seconds(),
		P50Us:       snap.Quantile(0.50) * 1e6,
		P99Us:       snap.Quantile(0.99) * 1e6,
		MeanUs:      snap.Mean() * 1e6,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)

	if *out != "" {
		lgRequests.Add(uint64(res.Requests))
		lgErrors.Add(uint64(res.Errors))
		lgQPS.Set(res.QPS)
		line, _ := json.Marshal(snapshotOut{
			Schema:  snapshotSchema,
			Name:    res.Name,
			Run:     res,
			Metrics: reg.Snapshot(),
		})
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opening -out:", err)
			os.Exit(1)
		}
		_, _ = f.Write(append(line, '\n'))
		_ = f.Close()
	}
	if res.Errors > 0 {
		os.Exit(2)
	}
}
