// Command t3serve serves a trained T3 model over HTTP: prediction and
// execution endpoints plus the full observability surface of internal/obs.
//
// Usage:
//
//	t3serve [-addr :8080] [-model models/t3_default.json] [-workers 0] [-log text|json]
//
// Endpoints:
//
//	POST /predict            plan JSON in (see internal/planio), prediction out.
//	                         ?cards=true|est selects cardinality annotations.
//	POST /run                predict the plan and score the q-error into the
//	                         drift histogram. ?actual_ns=N supplies the
//	                         caller's measured execution time (the normal
//	                         case: plans sent over the wire carry only
//	                         annotations, never data). Without it the plan is
//	                         executed on the in-memory engine, which requires
//	                         bound tables and fails for decoded plans.
//	GET  /metrics            Prometheus text exposition of every metric.
//	GET  /metrics.json       the same registry as a JSON snapshot (the
//	                         schema t3predict/t3bench -json also emit).
//	GET  /healthz            liveness probe.
//	GET  /debug/vars         expvar, including the metrics snapshot.
//	GET  /debug/pprof/       net/http/pprof profiles.
//
// Example:
//
//	t3serve -model models/t3_default.json &
//	curl -s -X POST --data-binary @plan.json localhost:8080/predict
//	curl -s localhost:8080/metrics | grep t3_predict_latency
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=5
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"strconv"
	"time"

	"t3"
	"t3/internal/obs"
	"t3/internal/planio"
)

// HTTP serving metrics, alongside the built-in T3 metrics on obs.Default.
var (
	httpRequests = obs.Default.NewCounter("t3_http_requests_total",
		"HTTP requests served.")
	httpErrors = obs.Default.NewCounter("t3_http_errors_total",
		"HTTP requests answered with a non-2xx status.")
	httpLatency = obs.Default.NewHistogram("t3_http_request_seconds",
		"HTTP request handling latency.", obs.UnitNanoseconds)
)

// maxBody bounds request bodies (plans are small; 8 MiB is generous).
const maxBody = 8 << 20

// server carries the loaded model through the handlers.
type server struct {
	model *t3.Model
	log   *slog.Logger
}

// predictResponse is the JSON answer of /predict and the prediction half
// of /run.
type predictResponse struct {
	PredictedNs int64              `json:"predicted_ns"`
	Predicted   string             `json:"predicted"`
	Tier        string             `json:"tier"`
	Pipelines   []pipelinePredJSON `json:"pipelines"`
}

type pipelinePredJSON struct {
	Index           int     `json:"index"`
	PerTupleSeconds float64 `json:"per_tuple_seconds"`
	Cardinality     float64 `json:"cardinality"`
	TotalNs         int64   `json:"total_ns"`
}

// runResponse is the JSON answer of /run.
type runResponse struct {
	predictResponse
	ActualNs int64   `json:"actual_ns"`
	Actual   string  `json:"actual"`
	QError   float64 `json:"qerror"`
}

// readPlan decodes the request body as a plan and picks the card mode.
func readPlan(r *http.Request) (*t3.Plan, t3.CardMode, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		return nil, t3.TrueCards, fmt.Errorf("reading body: %w", err)
	}
	root, err := planio.Unmarshal(data)
	if err != nil {
		return nil, t3.TrueCards, fmt.Errorf("decoding plan: %w", err)
	}
	mode := t3.TrueCards
	if r.URL.Query().Get("cards") == "est" {
		mode = t3.EstCards
	}
	return root, mode, nil
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a plan JSON")
		return
	}
	root, mode, err := readPlan(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	total, per := s.model.PredictPlan(root, mode)
	writeJSON(w, predictResp(s.model, total, per))
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a plan JSON")
		return
	}
	root, mode, err := readPlan(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var predicted, actual time.Duration
	var q float64
	if v := r.URL.Query().Get("actual_ns"); v != "" {
		// The caller executed the query elsewhere and reports the measured
		// time; we score our prediction against it.
		ns, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || ns < 0 {
			httpError(w, http.StatusBadRequest, "actual_ns must be a non-negative integer")
			return
		}
		actual = time.Duration(ns)
		predicted, _ = s.model.PredictPlan(root, mode)
		q = t3.RecordObserved(predicted, actual)
	} else if predicted, actual, q, err = s.model.PredictAndRun(root, mode); err != nil {
		httpError(w, http.StatusUnprocessableEntity,
			err.Error()+" (plans decoded from JSON carry no data; pass ?actual_ns=N with the measured time instead)")
		return
	}
	_, per := s.model.PredictPlan(root, mode)
	writeJSON(w, runResponse{
		predictResponse: predictResp(s.model, predicted, per),
		ActualNs:        actual.Nanoseconds(),
		Actual:          actual.String(),
		QError:          q,
	})
}

func predictResp(m *t3.Model, total time.Duration, per []t3.PipelinePrediction) predictResponse {
	resp := predictResponse{
		PredictedNs: total.Nanoseconds(),
		Predicted:   total.String(),
		Tier:        m.Tier(),
		Pipelines:   make([]pipelinePredJSON, len(per)),
	}
	for i, p := range per {
		resp.Pipelines[i] = pipelinePredJSON{
			Index:           p.Index,
			PerTupleSeconds: p.PerTupleSeconds,
			Cardinality:     p.Cardinality,
			TotalNs:         p.Total.Nanoseconds(),
		}
	}
	return resp
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

func handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, obs.Default.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// instrument wraps a handler with request counting, latency recording, and
// structured access logging.
func instrument(log *slog.Logger, name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		httpRequests.Inc()
		h(w, r)
		d := time.Since(start)
		httpLatency.Observe(d)
		log.Debug("request", "endpoint", name, "method", r.Method, "remote", r.RemoteAddr, "dur", d)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		workers   = flag.Int("workers", 0, "parallel workers for batched prediction (0 = GOMAXPROCS)")
		logFormat = flag.String("log", "text", "log format: text|json")
		verbose   = flag.Bool("v", false, "debug logging (per-request access logs)")
	)
	flag.Parse()
	logger := obs.SetupLogging(os.Stderr, *logFormat, *verbose)

	model, err := t3.Load(*modelPath)
	if err != nil {
		logger.Error("loading model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	model.SetWorkers(*workers)
	s := &server{model: model, log: logger}

	// The metrics snapshot doubles as an expvar, so stock expvar tooling
	// (and /debug/vars) sees the same numbers as /metrics.
	expvar.Publish("t3_metrics", expvar.Func(func() any { return obs.Default.Snapshot() }))

	// Register on the default mux, which net/http/pprof and expvar already
	// populated with /debug/pprof/* and /debug/vars.
	http.HandleFunc("/predict", instrument(logger, "predict", s.handlePredict))
	http.HandleFunc("/run", instrument(logger, "run", s.handleRun))
	http.HandleFunc("/metrics", instrument(logger, "metrics", handleMetrics))
	http.HandleFunc("/metrics.json", instrument(logger, "metrics.json", handleMetricsJSON))
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})

	logger.Info("t3serve listening", "addr", *addr, "model", *modelPath, "tier", model.Tier())
	srv := &http.Server{Addr: *addr, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("server stopped", "err", err)
		os.Exit(1)
	}
}
