// Command t3serve serves a trained T3 model over HTTP and raw TCP:
// prediction and execution endpoints, a high-throughput binary wire
// protocol with request coalescing and a fingerprint-keyed prediction
// cache, plus the full observability surface of internal/obs.
//
// Usage:
//
//	t3serve [-addr :8080] [-tcp :8091] [-model models/t3_default.json]
//	        [-cache 65536] [-coalesce-batch 64] [-coalesce-wait 20us]
//	        [-workers 0] [-log text|json]
//	        [-drift-tick 5s] [-drift-window 12] [-drift-threshold 2.0]
//	        [-drift-quantile 0.9]
//	        [-retrain-registry dir] [-retrain-instance tpch|tpcds|imdb]
//	        [-retrain-scale 0.01] [-retrain-pergroup 1] [-retrain-runs 3]
//	        [-retrain-workers 0] [-retrain-seed 1] [-retrain-holdout 0.25]
//	        [-retrain-quantile 0.9] [-retrain-promote-ratio 0.95]
//	        [-retrain-min-interval 10m] [-retrain-rollback-window 0]
//	        [-retrain-keep 8]
//
// Endpoints:
//
//	POST /predict            plan JSON in (see internal/planio), prediction out.
//	                         ?cards=true|est selects cardinality annotations.
//	POST /predict.bin        binary wire frame in (see internal/wire), wire
//	                         response frame out. Served through the
//	                         coalescing/caching core.
//	POST /run                predict the plan and score the q-error into the
//	                         drift histogram. ?actual_ns=N supplies the
//	                         caller's measured execution time (the normal
//	                         case: plans sent over the wire carry only
//	                         annotations, never data). Without it the plan is
//	                         executed on the in-memory engine, which requires
//	                         bound tables and fails for decoded plans.
//	POST /reload             re-read the model file, atomically swap it in,
//	                         and invalidate the prediction cache.
//	GET  /metrics            Prometheus text exposition of every metric.
//	GET  /metrics.json       the same registry as a JSON snapshot (the
//	                         schema t3predict/t3bench -json also emit).
//	GET  /healthz            liveness probe.
//	GET  /debug/vars         expvar, including the metrics snapshot.
//	GET  /debug/pprof/       net/http/pprof profiles.
//	GET  /debug/queries      the flight recorder: recent traced queries with
//	                         per-stage span timelines (?n= caps the count).
//	GET  /debug/worst        worst mispredictions by q-error, each with a
//	                         replayable wire frame (/debug/worst/frame?rank=N
//	                         downloads the raw frame; POST it to /predict.bin
//	                         to reproduce the prediction).
//	GET  /debug/drift        windowed vs lifetime q-error quantiles and the
//	                         drift alarm state (see -drift-* flags).
//	GET  /debug/ctrl         the retrain control plane: live/previous registry
//	                         versions, episode counts, last shadow comparison.
//	                         POST ?action=retrain starts an episode by hand,
//	                         POST ?action=rollback restores the previous
//	                         registry version. Requires -retrain-registry.
//
// With -retrain-registry the drift alarm closes the loop: the controller
// (internal/ctrl) collects fresh labels from the configured workload,
// retrains, shadow-evaluates the candidate against the live model on
// held-out labels plus the worst-misprediction exemplars, and promotes
// winners through the same atomic swap /reload uses — writing every
// promoted model to the versioned registry first so a rollback can restore
// the prior version bit-identically.
//
// With -tcp the same binary wire protocol is served on a raw TCP listener:
// any number of length-prefixed request frames per connection, one response
// frame each, in order (pipelining encouraged — see cmd/t3loadgen).
//
// Example:
//
//	t3serve -model models/t3_default.json -tcp :8091 &
//	curl -s -X POST --data-binary @plan.json localhost:8080/predict
//	t3loadgen -proto tcp -addr localhost:8091 -duration 5s
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=5
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"t3"
	"t3/internal/ctrl"
	"t3/internal/obs"
	"t3/internal/obs/trace"
	"t3/internal/planio"
	"t3/internal/registry"
	"t3/internal/serve"
	"t3/internal/wire"
	"t3/internal/workload"
)

// HTTP serving metrics, alongside the built-in T3 metrics on obs.Default.
var (
	httpRequests = obs.Default.NewCounter("t3_http_requests_total",
		"HTTP requests served.")
	httpErrors = obs.Default.NewCounter("t3_http_errors_total",
		"HTTP requests answered with a non-2xx status.")
	httpLatency = obs.Default.NewHistogram("t3_http_request_seconds",
		"HTTP request handling latency.", obs.UnitNanoseconds)
)

// maxBody bounds request bodies (plans are small; 8 MiB is generous).
const maxBody = 8 << 20

// server carries the serving core through the handlers. The model is read
// through the core so /reload swaps are visible everywhere at once.
type server struct {
	core      *serve.Server
	modelPath string
	reloadMu  sync.Mutex
	log       *slog.Logger
	drift     *trace.Detector
	// ctrl is the retrain control plane (nil unless -retrain-registry).
	ctrl *ctrl.Controller
}

func (s *server) model() *t3.Model { return s.core.Model() }

// predictResponse is the JSON answer of /predict and the prediction half
// of /run.
type predictResponse struct {
	PredictedNs int64              `json:"predicted_ns"`
	Predicted   string             `json:"predicted"`
	Tier        string             `json:"tier"`
	Pipelines   []pipelinePredJSON `json:"pipelines"`
}

type pipelinePredJSON struct {
	Index           int     `json:"index"`
	PerTupleSeconds float64 `json:"per_tuple_seconds"`
	Cardinality     float64 `json:"cardinality"`
	TotalNs         int64   `json:"total_ns"`
}

// runResponse is the JSON answer of /run.
type runResponse struct {
	predictResponse
	ActualNs int64   `json:"actual_ns"`
	Actual   string  `json:"actual"`
	QError   float64 `json:"qerror"`
}

// readPlan decodes the request body as a plan and picks the card mode. The
// body is hard-capped at maxBody via http.MaxBytesReader, which also closes
// the connection of an oversized sender.
func readPlan(w http.ResponseWriter, r *http.Request) (*t3.Plan, t3.CardMode, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, t3.TrueCards, fmt.Errorf("reading body: %w", err)
	}
	root, err := planio.Unmarshal(data)
	if err != nil {
		return nil, t3.TrueCards, fmt.Errorf("decoding plan: %w", err)
	}
	mode := t3.TrueCards
	if r.URL.Query().Get("cards") == "est" {
		mode = t3.EstCards
	}
	return root, mode, nil
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a plan JSON")
		return
	}
	root, mode, err := readPlan(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	m := s.model()
	total, per := m.PredictPlan(root, mode)
	writeJSON(w, predictResp(m, total, per))
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a plan JSON")
		return
	}
	root, mode, err := readPlan(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	m := s.model()
	var predicted, actual time.Duration
	var q float64
	if v := r.URL.Query().Get("actual_ns"); v != "" {
		// The caller executed the query elsewhere and reports the measured
		// time; we score our prediction against it.
		ns, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || ns < 0 {
			httpError(w, http.StatusBadRequest, "actual_ns must be a non-negative integer")
			return
		}
		actual = time.Duration(ns)
		// Client-reported rounds carry real execution times, so they are
		// always traced (ForceBegin bypasses sampling) on top of scoring
		// the drift histogram and the exemplar store (/debug/worst).
		tr := trace.Default.ForceBegin(trace.KindRun, uint8(mode))
		var ps t3.PredictScratch
		ps.AttachTrace(tr)
		predicted, _ = m.PredictPlanScratch(root, mode, &ps)
		q = t3.RecordObservedPlan(root, mode, predicted, actual)
		if tr != nil {
			tr.Fingerprint = trace.KeyFingerprint(wire.PlanKey(root, mode))
			tr.PredictedNs = predicted.Nanoseconds()
			tr.ActualNs = actual.Nanoseconds()
			if qm := q * 1000; qm >= 0 && qm < 1e18 {
				tr.QErrorMilli = uint64(qm)
			}
			trace.Default.Publish(tr)
		}
	} else if predicted, actual, q, err = m.PredictAndRun(root, mode); err != nil {
		httpError(w, http.StatusUnprocessableEntity,
			err.Error()+" (plans decoded from JSON carry no data; pass ?actual_ns=N with the measured time instead)")
		return
	}
	_, per := m.PredictPlan(root, mode)
	writeJSON(w, runResponse{
		predictResponse: predictResp(m, predicted, per),
		ActualNs:        actual.Nanoseconds(),
		Actual:          actual.String(),
		QError:          q,
	})
}

// handleReload re-reads the model file and atomically swaps it into the
// serving core, invalidating every cached prediction.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST to reload")
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	model, err := t3.Load(s.modelPath)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("reloading %s: %v", s.modelPath, err))
		return
	}
	s.core.SetModel(model)
	s.log.Info("model reloaded", "path", s.modelPath, "tier", model.Tier())
	writeJSON(w, map[string]string{"status": "reloaded", "model": s.modelPath, "tier": model.Tier()})
}

func predictResp(m *t3.Model, total time.Duration, per []t3.PipelinePrediction) predictResponse {
	resp := predictResponse{
		PredictedNs: total.Nanoseconds(),
		Predicted:   total.String(),
		Tier:        m.Tier(),
		Pipelines:   make([]pipelinePredJSON, len(per)),
	}
	for i, p := range per {
		resp.Pipelines[i] = pipelinePredJSON{
			Index:           p.Index,
			PerTupleSeconds: p.PerTupleSeconds,
			Cardinality:     p.Cardinality,
			TotalNs:         p.Total.Nanoseconds(),
		}
	}
	return resp
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

func handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, obs.Default.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// instrument wraps a handler with request counting, latency recording, and
// structured access logging.
func instrument(log *slog.Logger, name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		httpRequests.Inc()
		h(w, r)
		d := time.Since(start)
		httpLatency.Observe(d)
		log.Debug("request", "endpoint", name, "method", r.Method, "remote", r.RemoteAddr, "dur", d)
	}
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		tcpAddr       = flag.String("tcp", "", "raw TCP wire-protocol listen address (empty = disabled)")
		modelPath     = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		workers       = flag.Int("workers", 0, "parallel workers for batched prediction (0 = GOMAXPROCS)")
		cacheEntries  = flag.Int("cache", serve.DefaultCacheEntries, "prediction cache entries (0 disables)")
		coalesceBatch = flag.Int("coalesce-batch", 64, "max requests per coalesced dispatch")
		coalesceWait  = flag.Duration("coalesce-wait", 20*time.Microsecond, "max coalescing window wait (0 disables coalescing)")
		logFormat     = flag.String("log", "text", "log format: text|json")
		verbose       = flag.Bool("v", false, "debug logging (per-request access logs)")

		driftTick      = flag.Duration("drift-tick", 5*time.Second, "drift detector epoch period")
		driftWindow    = flag.Int("drift-window", 12, "drift window size in epochs (span = (epochs-1) x tick)")
		driftThreshold = flag.Float64("drift-threshold", 2.0, "windowed q-error quantile that raises t3_drift_alarm")
		driftQuantile  = flag.Float64("drift-quantile", 0.9, "watched q-error quantile")

		retrainRegistry = flag.String("retrain-registry", "", "model registry directory; enables drift-triggered retraining")
		retrainInstance = flag.String("retrain-instance", "tpch", "retraining workload schema: tpch|tpcds|imdb")
		retrainScale    = flag.Float64("retrain-scale", 0.01, "retraining instance scale factor")
		retrainPerGroup = flag.Int("retrain-pergroup", 1, "retraining queries per structure group")
		retrainRuns     = flag.Int("retrain-runs", 3, "timing runs per retraining query")
		retrainWorkers  = flag.Int("retrain-workers", 0, "label-collection workers (0 = GOMAXPROCS)")
		retrainSeed     = flag.Int64("retrain-seed", 1, "retraining workload generation seed")
		retrainHoldout  = flag.Float64("retrain-holdout", 0.25, "fraction of labels held out for shadow evaluation")
		retrainQuantile = flag.Float64("retrain-quantile", 0.9, "shadow q-error quantile candidates are judged on")
		retrainPromote  = flag.Float64("retrain-promote-ratio", 0.95, "promote when candidate quantile <= ratio x live quantile")
		retrainInterval = flag.Duration("retrain-min-interval", 10*time.Minute, "minimum spacing between retrain episodes")
		retrainRollback = flag.Duration("retrain-rollback-window", 0, "drift alarm within this span after a promotion rolls it back (0 disables)")
		retrainKeep     = flag.Int("retrain-keep", 8, "registry versions kept by GC")
	)
	flag.Parse()
	logger := obs.SetupLogging(os.Stderr, *logFormat, *verbose)

	model, err := t3.Load(*modelPath)
	if err != nil {
		logger.Error("loading model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	model.SetWorkers(*workers)

	cfg := serve.Config{MaxBatch: *coalesceBatch, MaxWait: *coalesceWait}
	if *cacheEntries <= 0 {
		cfg.CacheEntries = -1
	} else {
		cfg.CacheEntries = *cacheEntries
	}
	if *coalesceWait == 0 {
		cfg.NoCoalesce = true
	}
	core := serve.New(model, cfg)
	drift := trace.NewQErrorDetector(trace.DetectorConfig{
		Epochs:    *driftWindow,
		Quantile:  *driftQuantile,
		Threshold: *driftThreshold,
	})
	drift.OnAlarm(func(ev trace.DriftEvent) {
		if ev.Raised {
			logger.Warn("drift alarm raised", "qerror", ev.Quantile,
				"threshold", ev.Threshold, "window_observations", ev.Count)
		} else {
			logger.Info("drift alarm cleared", "qerror", ev.Quantile,
				"window_observations", ev.Count)
		}
	})
	s := &server{core: core, modelPath: *modelPath, log: logger, drift: drift}

	if *retrainRegistry != "" {
		var spec workload.InstanceSpec
		switch *retrainInstance {
		case "tpch":
			spec = workload.TPCHSpec("tpch_retrain", *retrainScale, *retrainSeed)
		case "tpcds":
			spec = workload.TPCDSSpec("tpcds_retrain", *retrainScale*20, *retrainSeed)
		case "imdb":
			spec = workload.IMDBSpec("imdb_retrain", *retrainScale, *retrainSeed)
		default:
			logger.Error("unknown -retrain-instance", "instance", *retrainInstance)
			os.Exit(1)
		}
		logger.Info("generating retraining instance", "schema", *retrainInstance, "scale", *retrainScale)
		inst, err := workload.Generate(spec)
		if err != nil {
			logger.Error("generating retraining instance", "err", err)
			os.Exit(1)
		}
		reg, err := registry.Open(*retrainRegistry)
		if err != nil {
			logger.Error("opening model registry", "dir", *retrainRegistry, "err", err)
			os.Exit(1)
		}
		s.ctrl, err = ctrl.New(ctrl.Config{
			Registry: reg,
			Source: &ctrl.WorkloadSource{
				Instance: inst,
				Config: workload.CollectConfig{
					Workers: *retrainWorkers, Runs: *retrainRuns,
					PerGroup: *retrainPerGroup, Seed: *retrainSeed,
				},
			},
			Swapper:         core,
			Exemplars:       trace.Exemplars,
			HoldoutFraction: *retrainHoldout,
			ShadowQuantile:  *retrainQuantile,
			PromoteRatio:    *retrainPromote,
			MinInterval:     *retrainInterval,
			RollbackWindow:  *retrainRollback,
			KeepVersions:    *retrainKeep,
		})
		if err != nil {
			logger.Error("starting retrain controller", "err", err)
			os.Exit(1)
		}
		s.ctrl.Attach(drift)
		logger.Info("retrain control plane enabled", "registry", reg.Dir(),
			"instance", *retrainInstance, "promote_ratio", *retrainPromote)
	}

	// The metrics snapshot doubles as an expvar, so stock expvar tooling
	// (and /debug/vars) sees the same numbers as /metrics.
	expvar.Publish("t3_metrics", expvar.Func(func() any { return obs.Default.Snapshot() }))

	// Register on the default mux, which net/http/pprof and expvar already
	// populated with /debug/pprof/* and /debug/vars.
	http.HandleFunc("/predict", instrument(logger, "predict", s.handlePredict))
	http.HandleFunc("/predict.bin", core.PredictBinHandler())
	http.HandleFunc("/run", instrument(logger, "run", s.handleRun))
	http.HandleFunc("/reload", instrument(logger, "reload", s.handleReload))
	http.HandleFunc("/metrics", instrument(logger, "metrics", handleMetrics))
	http.HandleFunc("/metrics.json", instrument(logger, "metrics.json", handleMetricsJSON))
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	http.HandleFunc("/debug/queries", instrument(logger, "debug.queries", handleDebugQueries))
	http.HandleFunc("/debug/worst", instrument(logger, "debug.worst", handleDebugWorst))
	http.HandleFunc("/debug/worst/frame", instrument(logger, "debug.worst.frame", handleDebugWorstFrame))
	http.HandleFunc("/debug/drift", instrument(logger, "debug.drift", s.handleDebugDrift))
	http.HandleFunc("/debug/ctrl", instrument(logger, "debug.ctrl", s.handleDebugCtrl))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Drift detection runs for the life of the process; ctx.Done doubles as
	// its stop signal during shutdown. The retrain controller (if enabled)
	// services drift triggers on its own goroutine the same way.
	go drift.Run(*driftTick, ctx.Done())
	if s.ctrl != nil {
		go s.ctrl.Run(ctx.Done())
	}

	srv := &http.Server{
		Addr:              *addr,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}

	errc := make(chan error, 2)
	var tcpLn net.Listener
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			logger.Error("tcp listen", "addr", *tcpAddr, "err", err)
			os.Exit(1)
		}
		logger.Info("t3serve wire listener", "addr", tcpLn.Addr().String())
		go func() {
			if err := core.ServeTCP(tcpLn); err != nil {
				errc <- fmt.Errorf("tcp server: %w", err)
			}
		}()
	}

	logger.Info("t3serve listening", "addr", *addr, "model", *modelPath, "tier", model.Tier(),
		"cache", cfg.CacheEntries, "coalesce_batch", cfg.MaxBatch, "coalesce_wait", cfg.MaxWait)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- fmt.Errorf("http server: %w", err)
		}
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
	case err := <-errc:
		logger.Error("server stopped", "err", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting, let in-flight requests finish.
	if tcpLn != nil {
		_ = tcpLn.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
