package main

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"t3/internal/obs/trace"
)

// The /debug observability surface of the flight recorder:
//
//	GET /debug/queries          recent traced queries, newest first (?n= cap)
//	GET /debug/worst            worst mispredictions by q-error, with
//	                            replayable wire frames
//	GET /debug/worst/frame?rank=N   one exemplar's raw request frame —
//	                            POST it back to /predict.bin to replay
//	GET /debug/drift            windowed vs lifetime q-error and alarm state

// traceJSON is the /debug/queries rendering of one trace: numeric ids
// resolved to names, offsets kept in nanoseconds for tooling.
type traceJSON struct {
	ID          uint64     `json:"id"`
	Kind        string     `json:"kind"`
	Mode        uint8      `json:"mode"`
	Flags       []string   `json:"flags,omitempty"`
	Start       time.Time  `json:"start"`
	TotalNs     int64      `json:"total_ns"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	PredictedNs int64      `json:"predicted_ns,omitempty"`
	ActualNs    int64      `json:"actual_ns,omitempty"`
	QError      float64    `json:"qerror,omitempty"`
	Spans       []spanJSON `json:"spans"`
}

type spanJSON struct {
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	// Pipeline shape, present on pipeline spans only.
	Pipeline    int `json:"pipeline,omitempty"`
	Morsels     int `json:"morsels,omitempty"`
	Parallelism int `json:"parallelism,omitempty"`
	// Arg is the raw stage argument (payload bytes, pipeline count, ...).
	Arg uint32 `json:"arg,omitempty"`
}

func renderTrace(t trace.Trace) traceJSON {
	out := traceJSON{
		ID:          t.ID,
		Kind:        t.Kind.String(),
		Mode:        t.Mode,
		Flags:       trace.FlagNames(t.Flags),
		Start:       time.Unix(0, t.StartUnixNs),
		TotalNs:     t.TotalNs,
		PredictedNs: t.PredictedNs,
		ActualNs:    t.ActualNs,
		QError:      float64(t.QErrorMilli) / 1000,
		Spans:       make([]spanJSON, 0, t.NSpans),
	}
	if t.Fingerprint != 0 {
		out.Fingerprint = fmt.Sprintf("%016x", t.Fingerprint)
	}
	for _, sp := range t.Spans[:t.NSpans] {
		sj := spanJSON{Stage: sp.Stage.String(), StartNs: sp.StartNs, DurNs: sp.DurNs}
		switch sp.Stage {
		case trace.StagePipeline:
			sj.Pipeline, sj.Morsels, sj.Parallelism = trace.UnpackPipelineArg(sp.Arg)
		case trace.StageMerge:
			sj.Pipeline = int(sp.Arg)
		default:
			sj.Arg = sp.Arg
		}
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// handleDebugQueries serves the flight-recorder ring, newest first.
func handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	limit := trace.DefaultRingSize
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		limit = n
	}
	traces := trace.Default.Snapshot(nil)
	if len(traces) > limit {
		traces = traces[:limit]
	}
	out := struct {
		Count   int         `json:"count"`
		Sampled string      `json:"sampling"`
		Traces  []traceJSON `json:"traces"`
	}{
		Count:   len(traces),
		Sampled: fmt.Sprintf("1 in %d serve/predict calls; all /run rounds", trace.DefaultSampleEvery),
		Traces:  make([]traceJSON, 0, len(traces)),
	}
	for _, t := range traces {
		out.Traces = append(out.Traces, renderTrace(t))
	}
	writeJSON(w, out)
}

// worstJSON is the /debug/worst rendering of one exemplar.
type worstJSON struct {
	Rank        int       `json:"rank"`
	QError      float64   `json:"qerror"`
	Fingerprint string    `json:"fingerprint"`
	Mode        uint8     `json:"mode"`
	PredictedNs int64     `json:"predicted_ns"`
	ActualNs    int64     `json:"actual_ns"`
	At          time.Time `json:"at"`
	FrameBytes  int       `json:"frame_bytes"`
	FrameURL    string    `json:"frame_url"`
}

// handleDebugWorst lists the worst-misprediction exemplars.
func handleDebugWorst(w http.ResponseWriter, _ *http.Request) {
	ex := trace.Exemplars.Snapshot()
	out := struct {
		Count  int         `json:"count"`
		Replay string      `json:"replay"`
		Worst  []worstJSON `json:"worst"`
	}{
		Count:  len(ex),
		Replay: "curl -s --data-binary @frame.bin $HOST/predict.bin",
		Worst:  make([]worstJSON, 0, len(ex)),
	}
	for i, e := range ex {
		out.Worst = append(out.Worst, worstJSON{
			Rank:        i,
			QError:      e.QError,
			Fingerprint: fmt.Sprintf("%016x", e.Fingerprint),
			Mode:        e.Mode,
			PredictedNs: e.PredictedNs,
			ActualNs:    e.ActualNs,
			At:          time.Unix(0, e.AtUnixNs),
			FrameBytes:  len(e.Frame),
			FrameURL:    fmt.Sprintf("/debug/worst/frame?rank=%d", i),
		})
	}
	writeJSON(w, out)
}

// handleDebugWorstFrame downloads one exemplar's raw wire request frame.
func handleDebugWorstFrame(w http.ResponseWriter, r *http.Request) {
	rank, err := strconv.Atoi(r.URL.Query().Get("rank"))
	if err != nil || rank < 0 {
		httpError(w, http.StatusBadRequest, "rank must be a non-negative integer")
		return
	}
	frame := trace.Exemplars.Frame(rank)
	if frame == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no exemplar at rank %d", rank))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=\"t3-worst-%d.bin\"", rank))
	_, _ = w.Write(frame)
}

// handleDebugDrift reports the drift detector's windowed view and alarm.
func (s *server) handleDebugDrift(w http.ResponseWriter, _ *http.Request) {
	st := s.drift.Status()
	writeJSON(w, struct {
		Raised           bool          `json:"alarm_raised"`
		WindowQuantile   float64       `json:"window_qerror"`
		WindowCount      uint64        `json:"window_observations"`
		WindowSpan       string        `json:"window_span"`
		LifetimeQuantile float64       `json:"lifetime_qerror"`
		LifetimeCount    uint64        `json:"lifetime_observations"`
		Ticks            uint64        `json:"ticks"`
		LastTransition   *time.Time    `json:"last_transition,omitempty"`
		WatchedQuantile  float64       `json:"watched_quantile"`
		Threshold        float64       `json:"threshold"`
		Clear            float64       `json:"clear"`
		MinCount         uint64        `json:"min_observations"`
		Epochs           int           `json:"window_epochs"`
	}{
		Raised:           st.Raised,
		WindowQuantile:   st.WindowQuantile,
		WindowCount:      st.WindowCount,
		WindowSpan:       st.WindowSpan.String(),
		LifetimeQuantile: st.LifetimeQuantile,
		LifetimeCount:    st.LifetimeCount,
		Ticks:            st.Ticks,
		LastTransition:   nilIfZero(st.LastTransition),
		WatchedQuantile:  st.Config.Quantile,
		Threshold:        st.Config.Threshold,
		Clear:            st.Config.Clear,
		MinCount:         st.Config.MinCount,
		Epochs:           st.Config.Epochs,
	})
}

// handleDebugCtrl reports the retrain control plane's state. POST with
// ?action=retrain starts an episode by hand (e.g. after deploying a new
// workload); ?action=rollback restores the previous registry version.
func (s *server) handleDebugCtrl(w http.ResponseWriter, r *http.Request) {
	if s.ctrl == nil {
		httpError(w, http.StatusNotFound, "retraining disabled (start t3serve with -retrain-registry)")
		return
	}
	if r.Method == http.MethodPost {
		switch action := r.URL.Query().Get("action"); action {
		case "retrain":
			res, err := s.ctrl.Retrain("manual via /debug/ctrl")
			if err != nil {
				httpError(w, http.StatusConflict, err.Error())
				return
			}
			writeJSON(w, res)
			return
		case "rollback":
			ver, err := s.ctrl.Rollback()
			if err != nil {
				httpError(w, http.StatusConflict, err.Error())
				return
			}
			writeJSON(w, map[string]int{"restored_version": ver})
			return
		default:
			httpError(w, http.StatusBadRequest, "action must be retrain or rollback")
			return
		}
	}
	writeJSON(w, s.ctrl.Status())
}

func nilIfZero(t time.Time) *time.Time {
	if t.IsZero() {
		return nil
	}
	return &t
}
