// Command t3predict loads a trained T3 model and predicts the execution
// time of annotated physical plans given as JSON (see internal/planio for
// the schema). A single plan prints the total prediction and the
// per-pipeline breakdown; multiple plans are predicted as one batch across
// the worker pool and printed as a summary table.
//
// Usage:
//
//	t3predict -model models/t3_default.json [-cards true|est] plan.json [plan2.json ...]
//	cat plan.json | t3predict -model models/t3_default.json -
//
// -json emits the predictions plus the metrics snapshot (the same schema
// cmd/t3serve exposes at /metrics.json) for CI diffing; -stats dumps the
// observability registry in human-readable form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"t3"
	"t3/internal/obs"
	"t3/internal/planio"
)

// minLatencySamples is the smallest sample count for which the reported
// p99 is meaningful: below it the tail quantiles collapse onto the max.
const minLatencySamples = 100

// measureLatency times reps scratch-path predictions of every plan into a
// shared-quantile-code histogram and returns its snapshot. It warns when
// the sample count is too small for a trustworthy tail.
func measureLatency(model *t3.Model, roots []*t3.Plan, mode t3.CardMode, reps int) obs.HistSnapshot {
	h := obs.NewHistogram("t3predict_latency_seconds", "", obs.UnitNanoseconds)
	var s t3.PredictScratch
	for _, r := range roots { // warm the scratch so timing sees steady state
		model.PredictPlanScratch(r, mode, &s)
	}
	for i := 0; i < reps; i++ {
		for _, r := range roots {
			start := time.Now()
			model.PredictPlanScratch(r, mode, &s)
			h.Since(start)
		}
	}
	snap := h.Snapshot()
	if snap.Count < minLatencySamples {
		slog.Warn("latency sample count too small for a meaningful p99",
			"samples", snap.Count, "want", minLatencySamples)
	}
	return snap
}

// jsonOutput is the -json schema: per-plan predictions plus the metrics
// snapshot (the same schema t3serve serves at /metrics.json).
type jsonOutput struct {
	Schema  string       `json:"schema"`
	Plans   []jsonPlan   `json:"plans"`
	Metrics obs.Snapshot `json:"metrics"`
}

type jsonPlan struct {
	Plan        string `json:"plan"`
	PredictedNs int64  `json:"predicted_ns"`
	Predicted   string `json:"predicted"`
}

func main() {
	var (
		modelPath = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		cards     = flag.String("cards", "true", "cardinality annotations to use: true|est")
		workers   = flag.Int("workers", 0, "parallel workers for batched prediction (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print the feature vectors")
		stats     = flag.Bool("stats", false, "dump the observability registry to stderr on exit")
		jsonOut   = flag.Bool("json", false, "emit predictions + metrics snapshot as JSON")
		logFormat = flag.String("log", "text", "log format: text|json")
	)
	flag.Parse()
	obs.SetupLogging(os.Stderr, *logFormat, false)
	if flag.NArg() < 1 {
		slog.Error("usage: t3predict [-model m.json] [-cards true|est] <plan.json|-> [plan2.json ...]")
		os.Exit(2)
	}

	roots := make([]*t3.Plan, flag.NArg())
	for i, arg := range flag.Args() {
		var data []byte
		var err error
		if arg == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(arg)
		}
		if err != nil {
			slog.Error("reading plan", "arg", arg, "err", err)
			os.Exit(1)
		}
		if roots[i], err = planio.Unmarshal(data); err != nil {
			slog.Error("decoding plan", "arg", arg, "err", err)
			os.Exit(1)
		}
	}
	model, err := t3.Load(*modelPath)
	if err != nil {
		slog.Error("loading model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	model.SetWorkers(*workers)
	mode := t3.TrueCards
	if *cards == "est" {
		mode = t3.EstCards
	}
	if *stats {
		defer func() { fmt.Fprint(os.Stderr, obs.Default.DumpText()) }()
	}

	if *jsonOut {
		totals := model.PredictBatch(roots, mode)
		measureLatency(model, roots, mode, 100)
		out := jsonOutput{Schema: "t3/metrics-snapshot/v1", Metrics: obs.Default.Snapshot()}
		for i, d := range totals {
			out.Plans = append(out.Plans, jsonPlan{Plan: flag.Arg(i), PredictedNs: d.Nanoseconds(), Predicted: d.String()})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			slog.Error("encoding output", "err", err)
			os.Exit(1)
		}
		return
	}

	if len(roots) > 1 {
		// Many plans: one batched prediction over the worker pool.
		totals := model.PredictBatch(roots, mode)
		fmt.Printf("%-30s %14s\n", "plan", "predicted")
		for i, d := range totals {
			fmt.Printf("%-30s %14v\n", flag.Arg(i), d)
		}
		lat := measureLatency(model, roots, mode, 100)
		fmt.Printf("evaluation tier: %s\n", model.Tier())
		fmt.Printf("per-query prediction latency: p50 %v, p95 %v, p99 %v (n=%d)\n",
			lat.QuantileDuration(0.50), lat.QuantileDuration(0.95), lat.QuantileDuration(0.99), lat.Count)
		return
	}

	root := roots[0]
	total, per := model.PredictPlan(root, mode)
	fmt.Printf("predicted execution time: %v\n", total)
	lat := measureLatency(model, roots, mode, 300)
	fmt.Printf("evaluation tier: %s; prediction latency: p50 %v, p95 %v, p99 %v (n=%d)\n",
		model.Tier(), lat.QuantileDuration(0.50), lat.QuantileDuration(0.95), lat.QuantileDuration(0.99), lat.Count)
	fmt.Printf("%-10s %14s %14s %14s\n", "pipeline", "per-tuple", "cardinality", "total")
	for _, p := range per {
		fmt.Printf("P%-9d %12.3gs %14.0f %14v\n", p.Index, p.PerTupleSeconds, p.Cardinality, p.Total)
	}
	if *verbose {
		vecs, _ := t3.Featurize(root, mode)
		reg := model.Registry()
		for i, v := range vecs {
			fmt.Printf("\npipeline %d features:\n%s", i, reg.Describe(v))
		}
	}
}
