// Command t3predict loads a trained T3 model and predicts the execution
// time of an annotated physical plan given as JSON (see internal/planio for
// the schema). It prints the total prediction and the per-pipeline
// breakdown.
//
// Usage:
//
//	t3predict -model models/t3_default.json [-cards true|est] plan.json
//	cat plan.json | t3predict -model models/t3_default.json -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"t3"
	"t3/internal/planio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3predict: ")
	var (
		modelPath = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		cards     = flag.String("cards", "true", "cardinality annotations to use: true|est")
		verbose   = flag.Bool("v", false, "print the feature vectors")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: t3predict [-model m.json] [-cards true|est] <plan.json|->")
	}

	var data []byte
	var err error
	if flag.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		log.Fatal(err)
	}

	root, err := planio.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	model, err := t3.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	mode := t3.TrueCards
	if *cards == "est" {
		mode = t3.EstCards
	}

	total, per := model.PredictPlan(root, mode)
	fmt.Printf("predicted execution time: %v\n", total)
	fmt.Printf("%-10s %14s %14s %14s\n", "pipeline", "per-tuple", "cardinality", "total")
	for _, p := range per {
		fmt.Printf("P%-9d %12.3gs %14.0f %14v\n", p.Index, p.PerTupleSeconds, p.Cardinality, p.Total)
	}
	if *verbose {
		vecs, _ := t3.Featurize(root, mode)
		reg := model.Registry()
		for i, v := range vecs {
			fmt.Printf("\npipeline %d features:\n%s", i, reg.Describe(v))
		}
	}
}
