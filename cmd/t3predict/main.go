// Command t3predict loads a trained T3 model and predicts the execution
// time of annotated physical plans given as JSON (see internal/planio for
// the schema). A single plan prints the total prediction and the
// per-pipeline breakdown; multiple plans are predicted as one batch across
// the worker pool and printed as a summary table.
//
// Usage:
//
//	t3predict -model models/t3_default.json [-cards true|est] plan.json [plan2.json ...]
//	cat plan.json | t3predict -model models/t3_default.json -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"t3"
	"t3/internal/planio"
)

// measureLatency times reps scratch-path predictions of every plan and
// returns the p50/p95/p99 of the per-prediction latency distribution.
func measureLatency(model *t3.Model, roots []*t3.Plan, mode t3.CardMode, reps int) (p50, p95, p99 time.Duration) {
	var s t3.PredictScratch
	for _, r := range roots { // warm the scratch so timing sees steady state
		model.PredictPlanScratch(r, mode, &s)
	}
	ds := make([]time.Duration, 0, reps*len(roots))
	for i := 0; i < reps; i++ {
		for _, r := range roots {
			start := time.Now()
			model.PredictPlanScratch(r, mode, &s)
			ds = append(ds, time.Since(start))
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], ds[len(ds)*95/100], ds[len(ds)*99/100]
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3predict: ")
	var (
		modelPath = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		cards     = flag.String("cards", "true", "cardinality annotations to use: true|est")
		workers   = flag.Int("workers", 0, "parallel workers for batched prediction (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print the feature vectors")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: t3predict [-model m.json] [-cards true|est] <plan.json|-> [plan2.json ...]")
	}

	roots := make([]*t3.Plan, flag.NArg())
	for i, arg := range flag.Args() {
		var data []byte
		var err error
		if arg == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(arg)
		}
		if err != nil {
			log.Fatal(err)
		}
		if roots[i], err = planio.Unmarshal(data); err != nil {
			log.Fatalf("%s: %v", arg, err)
		}
	}
	model, err := t3.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model.SetWorkers(*workers)
	mode := t3.TrueCards
	if *cards == "est" {
		mode = t3.EstCards
	}

	if len(roots) > 1 {
		// Many plans: one batched prediction over the worker pool.
		totals := model.PredictBatch(roots, mode)
		fmt.Printf("%-30s %14s\n", "plan", "predicted")
		for i, d := range totals {
			fmt.Printf("%-30s %14v\n", flag.Arg(i), d)
		}
		p50, p95, p99 := measureLatency(model, roots, mode, 100)
		fmt.Printf("evaluation tier: %s\n", model.Tier())
		fmt.Printf("per-query prediction latency: p50 %v, p95 %v, p99 %v\n", p50, p95, p99)
		return
	}

	root := roots[0]
	total, per := model.PredictPlan(root, mode)
	fmt.Printf("predicted execution time: %v\n", total)
	p50, p95, p99 := measureLatency(model, roots, mode, 300)
	fmt.Printf("evaluation tier: %s; prediction latency: p50 %v, p95 %v, p99 %v\n", model.Tier(), p50, p95, p99)
	fmt.Printf("%-10s %14s %14s %14s\n", "pipeline", "per-tuple", "cardinality", "total")
	for _, p := range per {
		fmt.Printf("P%-9d %12.3gs %14.0f %14v\n", p.Index, p.PerTupleSeconds, p.Cardinality, p.Total)
	}
	if *verbose {
		vecs, _ := t3.Featurize(root, mode)
		reg := model.Registry()
		for i, v := range vecs {
			fmt.Printf("\npipeline %d features:\n%s", i, reg.Describe(v))
		}
	}
}
