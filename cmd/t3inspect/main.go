// Command t3inspect reports on a trained T3 model: ensemble shape, feature
// importances (split counts), and the importance rollup per operator stage —
// a quick way to see what the model learned to pay attention to.
//
// Usage:
//
//	t3inspect [-model models/t3_default.json] [-top 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"t3/internal/feature"
	"t3/internal/gbdt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3inspect: ")
	var (
		modelPath = flag.String("model", "models/t3_default.json", "trained model (JSON)")
		top       = flag.Int("top", 20, "number of top features to list")
	)
	flag.Parse()

	m, err := gbdt.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	reg := feature.NewDefaultRegistry()
	names := m.FeatureNames
	if len(names) != m.NumFeatures {
		if m.NumFeatures == reg.NumFeatures() {
			names = reg.Names()
		} else {
			names = make([]string, m.NumFeatures)
			for i := range names {
				names[i] = fmt.Sprintf("f%d", i)
			}
		}
	}

	fmt.Printf("model: %s\n", *modelPath)
	fmt.Printf("  trees:        %d\n", len(m.Trees))
	fmt.Printf("  total nodes:  %d\n", m.NumNodes())
	leaves := 0
	maxLeaves := 0
	for i := range m.Trees {
		n := m.Trees[i].NumLeaves()
		leaves += n
		if n > maxLeaves {
			maxLeaves = n
		}
	}
	fmt.Printf("  total leaves: %d (max %d per tree)\n", leaves, maxLeaves)
	fmt.Printf("  features:     %d\n", m.NumFeatures)
	fmt.Printf("  base score:   %.4f\n", m.BaseScore)
	fmt.Printf("  objective:    %s, learning rate %.3f\n", m.Params.Objective, m.Params.LearningRate)

	imp := m.FeatureImportance()
	type fi struct {
		name  string
		count int
	}
	var ranked []fi
	total := 0
	for i, c := range imp {
		if c > 0 {
			ranked = append(ranked, fi{names[i], c})
			total += c
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].count > ranked[j].count })

	fmt.Printf("\ntop features by split count (%d splits total):\n", total)
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	for _, f := range ranked[:n] {
		fmt.Printf("  %-45s %6d (%4.1f%%)\n", f.name, f.count, 100*float64(f.count)/float64(total))
	}

	// Rollup per operator stage (the prefix before the basic feature name).
	stage := map[string]int{}
	for _, f := range ranked {
		key := f.name
		if i := strings.LastIndex(key, "_"); i > 0 {
			// Names look like HashJoin_Probe_right_percentage; roll up to
			// the operator_stage prefix (first two segments).
			parts := strings.SplitN(key, "_", 3)
			if len(parts) >= 2 {
				key = parts[0] + "_" + parts[1]
			}
		}
		stage[key] += f.count
	}
	type si struct {
		name  string
		count int
	}
	var stages []si
	for k, v := range stage {
		stages = append(stages, si{k, v})
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].count > stages[j].count })
	fmt.Println("\nsplit share by operator stage:")
	for _, s := range stages {
		fmt.Printf("  %-25s %6d (%4.1f%%)\n", s.name, s.count, 100*float64(s.count)/float64(total))
	}
}
