// Command t3workload generates and prints the random query workload for an
// instance, rendered as SQL (via the plan unparser). Useful for inspecting
// what the 16 structure groups produce and for exporting workloads to other
// systems.
//
// With -collect it instead executes the workload through the parallel
// label-collection runner, fanning queries out across -workers workers —
// which also sets the morsel-driven parallelism degree *inside* each query's
// pipelines (override with -intra, tune the split granularity with -morsel) —
// and prints throughput, the fraction of pipelines that ran morsel-parallel,
// and the label set's stable fingerprint (which is identical for every
// worker count, inter- or intra-query).
//
// Usage:
//
//	t3workload [-instance tpch|tpcds|imdb] [-scale 0.05] [-pergroup 2] [-seed 7] [-group SeJA]
//	t3workload -collect [-workers 4] [-intra 4] [-morsel 4096] [-runs 3] [-instance tpch] [-scale 0.05]
//
// -cpuprofile/-memprofile write pprof profiles of the run (the collection
// path is the interesting one: it exercises the parallel runner end to end).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/sql"
	"t3/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3workload: ")
	var (
		instance = flag.String("instance", "tpch", "instance schema: tpch|tpcds|imdb")
		scale    = flag.Float64("scale", 0.05, "instance size multiplier")
		perGroup = flag.Int("pergroup", 2, "queries per structure group")
		seed     = flag.Int64("seed", 7, "generator seed")
		group    = flag.String("group", "", "only this structure group (e.g. SeJA)")
		fixed    = flag.Bool("fixed", false, "also print the fixed benchmark queries")
		collect  = flag.Bool("collect", false, "execute the workload and collect (plan, pipeline-time) labels")
		workers  = flag.Int("workers", 0, "collection workers, inter- and intra-query (0 = GOMAXPROCS)")
		intra    = flag.Int("intra", 0, "intra-query morsel parallelism (0 = same as -workers, -1 = off)")
		morsel   = flag.Int("morsel", 0, "rows per morsel partition (0 = engine default)")
		runs     = flag.Int("runs", 1, "timing runs per query during collection")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	var spec workload.InstanceSpec
	switch *instance {
	case "tpch":
		spec = workload.TPCHSpec("tpch", *scale, *seed)
	case "tpcds":
		spec = workload.TPCDSSpec("tpcds", *scale*20, *seed)
	case "imdb":
		spec = workload.IMDBSpec("imdb", *scale, *seed)
	default:
		log.Fatalf("unknown instance %q", *instance)
	}
	in := workload.MustGenerate(spec)

	if *collect {
		ls, err := workload.CollectLabels(in, workload.CollectConfig{
			Workers:      *workers,
			IntraWorkers: *intra,
			MorselRows:   *morsel,
			Runs:         *runs,
			PerGroup:     *perGroup,
			Seed:         *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		var pipelines, parallelPipes, maxPar int
		for _, l := range ls.Labels {
			pipelines += len(l.Pipelines)
			for _, deg := range l.Parallelism {
				if deg > 1 {
					parallelPipes++
				}
				if deg > maxPar {
					maxPar = deg
				}
			}
		}
		fmt.Printf("collected %d queries (%d pipelines, %d timing runs each) on %s\n",
			len(ls.Labels), pipelines, *runs, ls.Instance)
		fmt.Printf("intra-query: %d/%d pipelines ran morsel-parallel (max degree %d)\n",
			parallelPipes, pipelines, maxPar)
		fmt.Printf("workers=%d elapsed=%s throughput=%.1f queries/s\n",
			ls.Workers, ls.Elapsed.Round(time.Millisecond), obs.CollectThroughput.Value())
		fmt.Printf("stable fingerprint: %016x\n", ls.Fingerprint())
		return
	}

	qs := workload.GenerateQueries(in, workload.GenConfig{PerGroup: *perGroup, Seed: *seed})
	if *fixed {
		switch *instance {
		case "tpch":
			qs = append(qs, workload.TPCHBenchmarkQueries(in)...)
		case "tpcds":
			qs = append(qs, workload.TPCDSBenchmarkQueries(in)...)
		case "imdb":
			qs = append(qs, workload.JOBQueries(in)...)
		}
	}

	printed := 0
	for _, q := range qs {
		if *group != "" && string(q.Group) != *group {
			continue
		}
		text, err := sql.Unparse(q.Root)
		if err != nil {
			log.Printf("-- %s: cannot unparse: %v", q.Name, err)
			continue
		}
		fmt.Printf("-- %s (group %s, %d pipelines)\n%s;\n\n",
			q.Name, q.Group, len(plan.Decompose(q.Root)), text)
		printed++
	}
	log.Printf("%d queries", printed)
}
