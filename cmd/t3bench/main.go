// Command t3bench reproduces the paper's evaluation: every table and figure
// of §5 can be regenerated individually or as a whole suite.
//
// Usage:
//
//	t3bench [-full] [-workers n] [experiment ...]
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//	ablation (feature-set ablation, an extension beyond the paper)
//	scheduling (prediction-driven scheduling, §1 extension)
//	planner (batched packed-tier plan costing; -results BENCH_planner.json)
//	all (default)
//
// The default (quick) configuration finishes in a few minutes; -full uses
// the paper-scale 200-tree models and the complete query sets.
//
// -stats dumps the observability registry (prediction/training/execution
// metrics accumulated while the experiments ran) to stderr; -json swaps the
// formatted tables for a JSON document containing the experiment list and
// the metrics snapshot (the schema cmd/t3serve serves at /metrics.json),
// so CI can diff runs. -results FILE writes each experiment's structured
// result (the Go structs, JSON-encoded) to FILE.
//
// -cpuprofile/-memprofile write pprof profiles covering the whole suite, for
// chasing regressions in training or prediction hot paths:
//
//	t3bench -cpuprofile cpu.pprof table1 && go tool pprof cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"t3/internal/experiments"
	"t3/internal/obs"
)

// runner pairs an experiment name with its execution.
type runner struct {
	name string
	run  func(*experiments.Env) (interface{ Format() string }, error)
}

var runners = []runner{
	{"table1", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable1() }},
	{"table2", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable2() }},
	{"table3", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable3() }},
	{"table4", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable4() }},
	{"table5", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable5() }},
	{"table6", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunTable6() }},
	{"fig1", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig1() }},
	{"fig5", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig5() }},
	{"fig6", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig6() }},
	{"fig7", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig7() }},
	{"fig8", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig8() }},
	{"fig9", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig9() }},
	{"fig10", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig10() }},
	{"fig11", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig11() }},
	{"fig12", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig12() }},
	{"fig13", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig13() }},
	{"fig14", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFig14() }},
	{"ablation", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunFeatureAblation() }},
	{"scheduling", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunScheduling() }},
	{"planner", func(e *experiments.Env) (interface{ Format() string }, error) { return e.RunPlanner() }},
}

// jsonOutput is the -json schema: the experiments run plus the metrics
// snapshot (the same schema t3serve serves at /metrics.json).
type jsonOutput struct {
	Schema      string            `json:"schema"`
	Experiments map[string]string `json:"experiments"` // name -> wall time
	Metrics     obs.Snapshot      `json:"metrics"`
}

// resultsOutput is the -results FILE schema: each experiment's structured
// result keyed by name (e.g. BENCH_planner.json for the planner benchmark).
type resultsOutput struct {
	Schema  string         `json:"schema"`
	Results map[string]any `json:"results"`
}

func main() {
	full := flag.Bool("full", false, "run the paper-scale configuration (slower)")
	workers := flag.Int("workers", 0, "parallel workers for training and batched prediction (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list available experiments")
	stats := flag.Bool("stats", false, "dump the observability registry to stderr on exit")
	jsonOut := flag.Bool("json", false, "emit experiment list + metrics snapshot as JSON instead of tables")
	resultsPath := flag.String("results", "", "write structured experiment results (JSON) to this file")
	logFormat := flag.String("log", "text", "log format: text|json")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	obs.SetupLogging(os.Stderr, *logFormat, false)

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		slog.Error("profiling", "err", err)
		os.Exit(1)
	}

	if *list {
		names := make([]string, len(runners))
		for i, r := range runners {
			names[i] = r.name
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	cfg.Workers = *workers
	cfg.Corpus.Progress = func(s string) { slog.Info(s) }
	env := experiments.NewEnv(cfg)

	want := flag.Args()
	expandAll := len(want) == 0
	for _, w := range want {
		if w == "all" {
			expandAll = true
		}
	}
	if expandAll {
		want = nil
		for _, r := range runners {
			want = append(want, r.name)
		}
	}

	byName := make(map[string]runner, len(runners))
	for _, r := range runners {
		byName[r.name] = r
	}
	ran := make(map[string]string)
	results := make(map[string]any)
	failed := false
	for _, name := range want {
		r, ok := byName[name]
		if !ok {
			slog.Error("unknown experiment (use -list)", "name", name)
			failed = true
			continue
		}
		start := time.Now()
		res, err := r.run(env)
		if err != nil {
			slog.Error("experiment failed", "name", name, "err", err)
			failed = true
			continue
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		ran[name] = elapsed.String()
		results[name] = res
		if !*jsonOut {
			fmt.Printf("\n=== %s (%v) ===\n%s", name, elapsed, res.Format())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{
			Schema:      "t3/metrics-snapshot/v1",
			Experiments: ran,
			Metrics:     obs.Default.Snapshot(),
		}); err != nil {
			slog.Error("encoding output", "err", err)
			failed = true
		}
	}
	if *resultsPath != "" {
		buf, err := json.MarshalIndent(resultsOutput{Schema: "t3/bench-results/v1", Results: results}, "", "  ")
		if err == nil {
			err = os.WriteFile(*resultsPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			slog.Error("writing results file", "path", *resultsPath, "err", err)
			failed = true
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, obs.Default.DumpText())
	}
	stopProf() // flush profiles before any non-zero exit
	if failed {
		os.Exit(1)
	}
}
