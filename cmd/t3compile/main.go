// Command t3compile emits Go source code for a trained T3 model — the
// repository's analogue of the lleaves LLVM compiler (§2.6 of the paper).
// Each decision node becomes one comparison and one branch, each leaf a
// return; the Go compiler turns the output into native machine code when the
// enclosing package is built.
//
// Usage:
//
//	t3compile -in models/t3_default.json -out internal/compiled/model_gen.go -pkg compiled
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"t3/internal/gbdt"
	"t3/internal/treec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3compile: ")
	var (
		in  = flag.String("in", "models/t3_default.json", "trained model (JSON)")
		out = flag.String("out", "internal/compiled/model_gen.go", "generated Go file")
		pkg = flag.String("pkg", "compiled", "package name for the generated file")
	)
	flag.Parse()

	model, err := gbdt.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	if dir := filepath.Dir(*out); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := treec.GenGo(model, *pkg, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d trees (%d nodes) to %s\n", len(model.Trees), model.NumNodes(), *out)
}
