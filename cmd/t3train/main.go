// Command t3train builds the training corpus (generate instances, generate
// queries, execute and benchmark them), trains a T3 model, evaluates it on
// the held-out TPC-DS instances, and saves the model as JSON.
//
// Usage:
//
//	t3train [-scale 0.4] [-pergroup 8] [-runs 3] [-rounds 200] [-seed 1] \
//	        [-workers 0] [-o models/t3_default.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/qerror"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3train: ")
	var (
		scale      = flag.Float64("scale", 0.4, "instance size multiplier (1 = full-size lite instances)")
		perGroup   = flag.Int("pergroup", 8, "generated queries per structure group per instance (paper: 40)")
		runs       = flag.Int("runs", 3, "timing runs per query (paper: 10)")
		rounds     = flag.Int("rounds", 200, "boosting rounds")
		workers    = flag.Int("workers", 0, "parallel workers for training and prediction (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "generator seed")
		out        = flag.String("o", "models/t3_default.json", "output model path")
		cardMode   = flag.String("cards", "true", "cardinality mode to train on: true|est")
		saveCorpus = flag.String("save-corpus", "", "save the benchmarked corpus to this path (.json or .json.gz)")
		loadCorpus = flag.String("load-corpus", "", "retrain from a saved corpus instead of benchmarking")
	)
	flag.Parse()

	start := time.Now()
	var corpus *benchdata.Corpus
	var err error
	if *loadCorpus != "" {
		log.Printf("loading corpus from %s...", *loadCorpus)
		corpus, err = benchdata.LoadCorpus(*loadCorpus)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := benchdata.Config{
			Scale:         *scale,
			PerGroup:      *perGroup,
			Runs:          *runs,
			Seed:          *seed,
			ReleaseTables: true,
			Progress:      func(s string) { log.Print(s) },
		}
		log.Printf("building corpus (scale=%.2f, %d queries/group, %d runs)...", *scale, *perGroup, *runs)
		corpus, err = benchdata.BuildCorpus(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("corpus ready in %v: %d train + %d test queries",
		time.Since(start).Round(time.Second), len(corpus.AllTrain()), len(corpus.AllTest()))
	if *saveCorpus != "" {
		if err := benchdata.SaveCorpus(corpus, *saveCorpus); err != nil {
			log.Fatal(err)
		}
		log.Printf("corpus saved to %s", *saveCorpus)
	}

	mode := t3.TrueCards
	if *cardMode == "est" {
		mode = t3.EstCards
	}
	params := t3.DefaultParams()
	params.NumRounds = *rounds
	params.Workers = *workers
	trainStart := time.Now()
	model, err := t3.Train(corpus.AllTrain(), t3.TrainOptions{Params: params, CardMode: mode})
	if err != nil {
		log.Fatal(err)
	}
	model.SetWorkers(*workers)
	log.Printf("trained %d trees in %v", *rounds, time.Since(trainStart).Round(time.Millisecond))

	test := corpus.AllTest()
	roots := make([]*t3.Plan, len(test))
	for i, b := range test {
		roots[i] = b.Query.Root
	}
	preds := model.PredictBatch(roots, mode)
	es := make([]float64, len(test))
	for i, b := range test {
		es[i] = qerror.QError(preds[i].Seconds(), b.MedianTotal().Seconds())
	}
	s := qerror.Summarize(es)
	log.Printf("TPC-DS zero-shot accuracy: p50=%.2f p90=%.2f avg=%.2f (n=%d)", s.P50, s.P90, s.Avg, s.N)

	if dir := filepath.Dir(*out); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", *out)
}
