// Command t3train builds the training corpus (generate instances, generate
// queries, execute and benchmark them), trains a T3 model, evaluates it on
// the held-out TPC-DS instances, and saves the model as JSON.
//
// Usage:
//
//	t3train [-scale 0.4] [-pergroup 8] [-runs 3] [-rounds 200] [-seed 1] \
//	        [-workers 0] [-stats] [-log text|json] [-o models/t3_default.json] \
//	        [-registry dir]
//
// With -registry the trained model is also written to the versioned model
// registry (internal/registry) — the same store t3serve's retrain control
// plane promotes from — stamped with the held-out corpus fingerprint so a
// later shadow comparison can tell which evaluation set the recorded
// accuracy refers to.
//
// The held-out evaluation doubles as online drift accounting: every
// prediction is scored against the measured execution time through
// t3.RecordObserved, so -stats shows the q-error drift histogram alongside
// the training metrics (rounds, per-round timing, rows/sec).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/obs"
	"t3/internal/qerror"
	"t3/internal/registry"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.4, "instance size multiplier (1 = full-size lite instances)")
		perGroup   = flag.Int("pergroup", 8, "generated queries per structure group per instance (paper: 40)")
		runs       = flag.Int("runs", 3, "timing runs per query (paper: 10)")
		rounds     = flag.Int("rounds", 200, "boosting rounds")
		workers    = flag.Int("workers", 0, "parallel workers for training and prediction (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "generator seed")
		out        = flag.String("o", "models/t3_default.json", "output model path")
		cardMode   = flag.String("cards", "true", "cardinality mode to train on: true|est")
		saveCorpus = flag.String("save-corpus", "", "save the benchmarked corpus to this path (.json or .json.gz)")
		loadCorpus = flag.String("load-corpus", "", "retrain from a saved corpus instead of benchmarking")
		stats      = flag.Bool("stats", false, "dump the observability registry to stderr on exit")
		logFormat  = flag.String("log", "text", "log format: text|json")
		regDir     = flag.String("registry", "", "also register the model in this versioned registry directory")
	)
	flag.Parse()
	obs.SetupLogging(os.Stderr, *logFormat, false)

	fail := func(msg string, err error) {
		slog.Error(msg, "err", err)
		if *stats {
			fmt.Fprint(os.Stderr, obs.Default.DumpText())
		}
		os.Exit(1)
	}

	start := time.Now()
	var corpus *benchdata.Corpus
	var err error
	if *loadCorpus != "" {
		slog.Info("loading corpus", "path", *loadCorpus)
		corpus, err = benchdata.LoadCorpus(*loadCorpus)
		if err != nil {
			fail("loading corpus", err)
		}
	} else {
		cfg := benchdata.Config{
			Scale:         *scale,
			PerGroup:      *perGroup,
			Runs:          *runs,
			Seed:          *seed,
			ReleaseTables: true,
			Progress:      func(s string) { slog.Info(s) },
		}
		slog.Info("building corpus", "scale", *scale, "queries_per_group", *perGroup, "runs", *runs)
		corpus, err = benchdata.BuildCorpus(cfg)
		if err != nil {
			fail("building corpus", err)
		}
	}
	slog.Info("corpus ready",
		"elapsed", time.Since(start).Round(time.Second),
		"train_queries", len(corpus.AllTrain()), "test_queries", len(corpus.AllTest()))
	if *saveCorpus != "" {
		if err := benchdata.SaveCorpus(corpus, *saveCorpus); err != nil {
			fail("saving corpus", err)
		}
		slog.Info("corpus saved", "path", *saveCorpus)
	}

	mode := t3.TrueCards
	if *cardMode == "est" {
		mode = t3.EstCards
	}
	params := t3.DefaultParams()
	params.NumRounds = *rounds
	params.Workers = *workers
	trainStart := time.Now()
	model, err := t3.Train(corpus.AllTrain(), t3.TrainOptions{Params: params, CardMode: mode})
	if err != nil {
		fail("training", err)
	}
	model.SetWorkers(*workers)
	slog.Info("trained", "trees", *rounds, "elapsed", time.Since(trainStart).Round(time.Millisecond))

	// Held-out evaluation: every prediction is scored against the measured
	// execution time, which also feeds the online drift histogram.
	test := corpus.AllTest()
	roots := make([]*t3.Plan, len(test))
	for i, b := range test {
		roots[i] = b.Query.Root
	}
	preds := model.PredictBatch(roots, mode)
	es := make([]float64, len(test))
	for i, b := range test {
		es[i] = t3.RecordObserved(preds[i], b.MedianTotal())
	}
	s := qerror.Summarize(es)
	slog.Info("TPC-DS zero-shot accuracy", "p50", s.P50, "p90", s.P90, "avg", s.Avg, "n", s.N)

	if dir := filepath.Dir(*out); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fail("creating output dir", err)
		}
	}
	if err := model.Save(*out); err != nil {
		fail("saving model", err)
	}
	fmt.Printf("model saved to %s\n", *out)

	if *regDir != "" {
		reg, err := registry.Open(*regDir)
		if err != nil {
			fail("opening registry", err)
		}
		ver, err := reg.Put(&registry.Artifact{
			Meta: registry.Meta{
				CreatedUnixNs:      time.Now().UnixNano(),
				Source:             "t3train",
				TrainLabels:        len(corpus.AllTrain()),
				HoldoutLabels:      len(test),
				HoldoutFingerprint: benchdata.Fingerprint(test),
				Note: fmt.Sprintf("t3train -scale %g -pergroup %d -runs %d -rounds %d -seed %d (zero-shot p50 %.3f p90 %.3f)",
					*scale, *perGroup, *runs, *rounds, *seed, s.P50, s.P90),
			},
			GBM: model.Boosted(),
		})
		if err != nil {
			fail("registering model", err)
		}
		slog.Info("model registered", "registry", reg.Dir(), "version", ver)
	}
	if *stats {
		fmt.Fprint(os.Stderr, obs.Default.DumpText())
	}
}
