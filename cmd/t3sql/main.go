// Command t3sql runs SQL queries against a generated benchmark instance,
// showing the physical plan, T3's per-pipeline prediction, and the measured
// execution time side by side.
//
// Usage:
//
//	t3sql [-instance tpch|tpcds|imdb] [-scale 0.05] [-model models/t3_default.json] \
//	      "SELECT ... FROM ... WHERE ..."
//
// Without a query argument it reads one statement per line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"t3"
	"t3/internal/engine/exec"
	"t3/internal/sql"
	"t3/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t3sql: ")
	var (
		instance  = flag.String("instance", "tpch", "instance schema: tpch|tpcds|imdb")
		scale     = flag.Float64("scale", 0.05, "instance size multiplier")
		modelPath = flag.String("model", "models/t3_default.json", "trained T3 model")
		seed      = flag.Int64("seed", 42, "instance generator seed")
		explain   = flag.Bool("explain", false, "print the physical plan")
	)
	flag.Parse()

	var spec workload.InstanceSpec
	switch *instance {
	case "tpch":
		spec = workload.TPCHSpec("tpch", *scale, *seed)
	case "tpcds":
		spec = workload.TPCDSSpec("tpcds", *scale*20, *seed)
	case "imdb":
		spec = workload.IMDBSpec("imdb", *scale, *seed)
	default:
		log.Fatalf("unknown instance %q", *instance)
	}
	log.Printf("generating %s (scale %.2f)...", *instance, *scale)
	in := workload.MustGenerate(spec)
	for _, tn := range in.DB.TableNames() {
		log.Printf("  %-18s %8d rows", tn, in.Table(tn).NumRows())
	}

	model, err := t3.Load(*modelPath)
	if err != nil {
		log.Printf("no model (%v); predictions disabled", err)
		model = nil
	}
	planner := sql.NewPlanner(in.DB, in.Stats)

	runOne := func(query string) {
		root, err := planner.PlanString(query)
		if err != nil {
			log.Printf("error: %v", err)
			return
		}
		if *explain {
			fmt.Print(root.Explain())
		}
		// Annotate true cardinalities with one analyze run, then predict
		// and time.
		if err := exec.AnnotateTrueCards(root); err != nil {
			log.Printf("error: %v", err)
			return
		}
		if model != nil {
			predTrue, per := model.PredictPlan(root, t3.TrueCards)
			predEst, _ := model.PredictPlan(root, t3.EstCards)
			fmt.Printf("T3 predicts %v (true cards) / %v (estimated cards) over %d pipelines\n",
				predTrue, predEst, len(per))
		}
		res, err := exec.Run(root, false)
		if err != nil {
			log.Printf("error: %v", err)
			return
		}
		fmt.Printf("executed in %v, %d rows\n", res.Total, res.Rows)
		printRows(res, 10)
	}

	if flag.NArg() > 0 {
		runOne(strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("enter one SELECT per line (ctrl-D to quit):")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		runOne(q)
	}
}

// printRows renders up to limit result rows.
func printRows(res *exec.RunResult, limit int) {
	if res.Output == nil || res.Rows == 0 {
		return
	}
	var header []string
	for _, c := range res.Output.Cols {
		header = append(header, c.Name)
	}
	fmt.Println(strings.Join(header, " | "))
	n := res.Rows
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		var row []string
		for _, c := range res.Output.Cols {
			switch {
			case c.Ints != nil:
				row = append(row, fmt.Sprintf("%d", c.Ints[i]))
			case c.Flts != nil:
				row = append(row, fmt.Sprintf("%.4g", c.Flts[i]))
			default:
				row = append(row, c.Strs[i])
			}
		}
		fmt.Println(strings.Join(row, " | "))
	}
	if res.Rows > limit {
		fmt.Printf("... (%d more rows)\n", res.Rows-limit)
	}
}
