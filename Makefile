# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench bench-baseline bench-predict bench-engine bench-serve bench-planner fuzz-smoke train compile experiments serve clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Full benchmark harness: one benchmark per paper table/figure.
bench:
	go test -bench=. -benchmem -run xxx .

# Training/prediction perf baseline: BenchmarkTrain across worker counts plus
# batched prediction, as machine-readable JSON for the perf trajectory.
bench-baseline:
	go test -run xxx -bench '^(BenchmarkTrain|BenchmarkPredictBatch)$$' -benchmem -json . > BENCH_train.json

# Prediction hot-path smoke: single/batch prediction benchmarks with alloc
# counts, as machine-readable JSON (mirrors the CI bench-smoke job).
bench-predict:
	go test -run xxx -bench=Predict -benchtime=100x -benchmem -json . > BENCH_predict.json

# Engine-kernel baseline: hash-join and group-by kernels (open-addressing vs
# the map baseline on identical inputs), morsel-parallel single-pipeline
# scaling, and label-collection throughput by worker count, as
# machine-readable JSON.
bench-engine:
	go test -run xxx -bench '^(BenchmarkHashJoin|BenchmarkGroupBy|BenchmarkParallelPipeline)$$' -benchmem -json ./internal/engine/exec/ > BENCH_engine.json
	go test -run xxx -bench '^BenchmarkLabelCollect$$' -benchmem -json ./internal/workload/ >> BENCH_engine.json

# Serving-tier benchmark matrix: boots t3serve and drives t3loadgen over
# JSON, binary HTTP, and raw TCP, with and without the prediction cache and
# request coalescing, into BENCH_serve.json. `make bench-serve DUR=10s CONC=16`
# passes through to the script.
bench-serve:
	DUR=$(or $(DUR),5s) CONC=$(or $(CONC),8) scripts/bench_serve.sh

# Planner-costing benchmark: DPsize join-order enumeration across costing
# paths (scalar Flat baseline, memoized scalars, level-batched packed tier),
# plan-quality execution, and the batched-dispatch scheduling comparison,
# into BENCH_planner.json; asserts bit-identical plans and the batched
# speedup floor. `make bench-planner FULL=1 MIN_SPEEDUP=4` passes through.
bench-planner:
	FULL=$(or $(FULL),0) MIN_SPEEDUP=$(or $(MIN_SPEEDUP),2.5) scripts/bench_planner.sh

# Short fuzzing pass over every native fuzz target, starting from the
# checked-in corpora under testdata/fuzz/. Override the per-target budget
# with e.g. `make fuzz-smoke FUZZTIME=2m`.
FUZZTIME ?= 20s

fuzz-smoke:
	go test -run xxx -fuzz '^FuzzExecDifferential$$' -fuzztime $(FUZZTIME) ./internal/engine/exec/
	go test -run xxx -fuzz '^FuzzTreeTiers$$' -fuzztime $(FUZZTIME) ./internal/treec/
	go test -run xxx -fuzz '^FuzzPlanIO$$' -fuzztime $(FUZZTIME) ./internal/planio/
	go test -run xxx -fuzz '^FuzzSQL$$' -fuzztime $(FUZZTIME) ./internal/sql/
	go test -run xxx -fuzz '^FuzzHistogramMerge$$' -fuzztime $(FUZZTIME) ./internal/obs/

# Rebuild the checked-in model and its compiled form.
train:
	go run ./cmd/t3train -scale 0.2 -pergroup 4 -runs 2 -rounds 200 -o models/t3_default.json

compile:
	go run ./cmd/t3compile -in models/t3_default.json -out internal/compiled/model_gen.go -pkg compiled

# Reproduce every table and figure of the paper (quick config).
experiments:
	go run ./cmd/t3bench

# Serve predictions over HTTP with /metrics, expvar, and pprof attached.
serve:
	go run ./cmd/t3serve -model models/t3_default.json

clean:
	go clean ./...
