#!/usr/bin/env bash
# bench_serve.sh — serving-tier benchmark matrix for cmd/t3serve.
#
# Boots t3serve and drives cmd/t3loadgen over every protocol, then once
# more against a cache-disabled, coalescing-disabled server to isolate what
# the prediction cache and request coalescing buy. Results accumulate as
# JSON lines in BENCH_serve.json (one t3/metrics-snapshot/v1 record per
# line: the run under "run", client-side latency metrics under "metrics").
# After each phase the server's own /metrics.json snapshot — the same
# schema — is saved next to it (BENCH_serve.server-<phase>.json), so client
# and server views of one run diff uniformly.
#
# Knobs (environment):
#   DUR=5s WARM=1s CONC=8 OUT=BENCH_serve.json scripts/bench_serve.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DUR=${DUR:-5s}
WARM=${WARM:-1s}
CONC=${CONC:-8}
OUT=${OUT:-BENCH_serve.json}
HTTP_ADDR=${HTTP_ADDR:-127.0.0.1:18080}
TCP_ADDR=${TCP_ADDR:-127.0.0.1:18091}

bindir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$bindir"
}
trap cleanup EXIT

echo "building t3serve + t3loadgen..."
go build -o "$bindir" ./cmd/t3serve ./cmd/t3loadgen

start_serve() { # args: extra t3serve flags
    "$bindir/t3serve" -addr "$HTTP_ADDR" -tcp "$TCP_ADDR" \
        -model models/t3_default.json "$@" >"$bindir/serve.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        curl -fsS "http://$HTTP_ADDR/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "t3serve did not come up:" >&2
    cat "$bindir/serve.log" >&2
    exit 1
}

stop_serve() {
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    serve_pid=""
}

gen() { # args: name proto addr [extra flags]
    local name=$1 proto=$2 addr=$3
    shift 3
    "$bindir/t3loadgen" -addr "$addr" -proto "$proto" -concurrency "$CONC" \
        -duration "$DUR" -warmup "$WARM" -name "$name" -out "$OUT" "$@" >/dev/null
}

snap() { # capture the server-side metrics snapshot of the current phase
    curl -fsS "http://$HTTP_ADDR/metrics.json" >"${OUT%.json}.server-$1.json"
}

qps() { # extract qps of the named record from $OUT
    grep "\"name\":\"$1\"" "$OUT" | tail -1 | sed 's/.*"qps":\([0-9.]*\).*/\1/'
}

: >"$OUT"

echo "=== cache + coalescing enabled ==="
start_serve
gen json-baseline      json "$HTTP_ADDR"
gen bin-coalesced      bin  "$HTTP_ADDR"
gen tcp-coalesced      tcp  "$TCP_ADDR"
gen tcp-cache-hot      tcp  "$TCP_ADDR" -distinct 1
snap cached
stop_serve

echo "=== cache + coalescing disabled (isolation run) ==="
start_serve -cache 0 -coalesce-wait 0
gen bin-nocache        bin  "$HTTP_ADDR"
gen tcp-nocache        tcp  "$TCP_ADDR" -distinct 1
snap nocache
stop_serve

json_qps=$(qps json-baseline)
bin_qps=$(qps bin-coalesced)
tcp_qps=$(qps tcp-coalesced)
hot_qps=$(qps tcp-cache-hot)
cold_qps=$(qps tcp-nocache)

echo
echo "results ($OUT):"
awk -v j="$json_qps" -v b="$bin_qps" -v t="$tcp_qps" -v h="$hot_qps" -v c="$cold_qps" 'BEGIN {
    printf "  JSON /predict         %10.0f QPS (baseline)\n", j
    printf "  binary /predict.bin   %10.0f QPS (%.1fx JSON)\n", b, b/j
    printf "  binary TCP            %10.0f QPS (%.1fx JSON)\n", t, t/j
    printf "  TCP single-plan hot   %10.0f QPS (cache on)\n", h
    printf "  TCP single-plan cold  %10.0f QPS (cache off, %.1fx slower)\n", c, h/c
    ok = 1
    if (j <= 0 || b <= 0 || t <= 0 || h <= 0 || c <= 0) { print "FAIL: a run recorded zero QPS"; ok = 0 }
    if (b < 2*j) { printf "FAIL: binary endpoint %.1fx JSON, want >= 2x\n", b/j; ok = 0 }
    if (h <= c)  { print "FAIL: prediction cache shows no speedup"; ok = 0 }
    exit ok ? 0 : 1
}'
