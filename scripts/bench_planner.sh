#!/usr/bin/env bash
# bench_planner.sh — planner-costing benchmark for the join-order enumerator.
#
# Runs the t3bench "planner" experiment: DPsize enumeration over synthetic
# chain/star/clique join graphs, timed under each costing path (the historical
# scalar Flat tier, memoized scalar tiers, and level-batched packed-tier
# costing), plus plan-quality execution of the chosen trees and the
# batched-dispatch scheduling comparison. Structured results land in
# BENCH_planner.json (t3/bench-results/v1), and the script asserts the
# headline: on the best 8+ relation graph, batched packed-tier costing must
# beat the scalar Flat path by >= MIN_SPEEDUP, choosing a plan bit-identical
# to the scalar packed reference on every case. The default floor (2.5x) is a
# single-threaded regression guard tolerant of model-training variance and
# noisy runners; measured single-core clique-8 runs land near 4x, and
# multi-worker runs on multicore hardware go well past it because per-level
# prediction batches fan over the worker pool while the scalar path is
# inherently serial.
#
# Knobs (environment):
#   OUT=BENCH_planner.json MIN_SPEEDUP=2.5 FULL=0 scripts/bench_planner.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_planner.json}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.5}
FULL=${FULL:-0}

flags=(-results "$OUT")
[ "$FULL" = "1" ] && flags+=(-full)

go run ./cmd/t3bench "${flags[@]}" planner

[ -s "$OUT" ] || { echo "FAIL: $OUT is empty" >&2; exit 1; }

# Pull per-case batched speedups out of the results JSON, check bit-identity
# on every case, and enforce the speedup floor on the best 8+ relation case.
go run ./scripts/planner_check.go -in "$OUT" -min-speedup "$MIN_SPEEDUP"
