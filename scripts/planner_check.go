//go:build ignore

// planner_check asserts the planner-costing benchmark headline from a
// BENCH_planner.json (t3/bench-results/v1) file:
//
//   - every batched enumeration chose a plan bit-identical (cost and tree)
//     to the scalar packed-tier reference, on every case;
//   - every batched row actually batched (batches > 0) and did model work
//     (model_calls > 0);
//   - among the 8+ relation cases — where the paper-style headline lives —
//     the best batched speedup over the scalar Flat path meets the floor.
//
// The speedup floor applies to the best 8+ relation case, not every case:
// chain graphs have too few candidate pairs per DP level for batching to
// amortize, and the floor is a regression guard for the case the headline is
// measured on (dense cliques), not a claim about every graph shape.
//
// Usage: go run ./scripts/planner_check.go -in BENCH_planner.json -min-speedup 2.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchFile struct {
	Schema  string `json:"schema"`
	Results struct {
		Planner struct {
			Cases []struct {
				Spec      string `json:"spec"`
				Relations int    `json:"relations"`
				Rows      []row  `json:"rows"`
			} `json:"cases"`
		} `json:"planner"`
	} `json:"results"`
}

type row struct {
	Path        string  `json:"path"`
	ModelCalls  int     `json:"model_calls"`
	Batches     int     `json:"batches"`
	Pruned      int     `json:"pruned"`
	Cost        float64 `json:"cost"`
	TreeMatches bool    `json:"tree_matches"`
	Speedup     float64 `json:"speedup"`
}

func main() {
	in := flag.String("in", "BENCH_planner.json", "bench results file")
	minSpeedup := flag.Float64("min-speedup", 2.5, "floor for the best 8+ relation batched speedup")
	flag.Parse()

	raw, err := os.ReadFile(*in)
	if err != nil {
		fatal("read %s: %v", *in, err)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		fatal("parse %s: %v", *in, err)
	}
	if f.Schema != "t3/bench-results/v1" {
		fatal("%s: unexpected schema %q", *in, f.Schema)
	}
	cases := f.Results.Planner.Cases
	if len(cases) == 0 {
		fatal("%s: no planner cases", *in)
	}

	bestBig, bestBigSpec := 0.0, ""
	for _, c := range cases {
		ref, refOK := findRow(c.Rows, "scalar-packed-memo")
		if !refOK {
			fatal("%s: missing scalar-packed-memo reference row", c.Spec)
		}
		for _, r := range c.Rows {
			if r.Path != "batched" && r.Path != "batched-w1" {
				continue
			}
			// Bit-identity: same packed predictor, so the chosen plan must
			// match the scalar reference exactly — equal cost down to the
			// last float bit and the same agreement with the Flat baseline.
			if r.Cost != ref.Cost || r.TreeMatches != ref.TreeMatches {
				fatal("%s %s: diverged from scalar-packed reference (cost %v vs %v, tree match %v vs %v)",
					c.Spec, r.Path, r.Cost, ref.Cost, r.TreeMatches, ref.TreeMatches)
			}
			if r.Batches == 0 || r.ModelCalls == 0 {
				fatal("%s %s: no batched model work recorded (batches=%d calls=%d)",
					c.Spec, r.Path, r.Batches, r.ModelCalls)
			}
			fmt.Printf("%-16s %-12s %7.2fx  calls=%-6d pruned=%-6d tree-ok\n",
				c.Spec, r.Path, r.Speedup, r.ModelCalls, r.Pruned)
			if c.Relations >= 8 && r.Speedup > bestBig {
				bestBig, bestBigSpec = r.Speedup, c.Spec
			}
		}
	}
	if bestBigSpec == "" {
		fatal("no 8+ relation batched rows found")
	}
	if bestBig < *minSpeedup {
		fatal("best 8+ relation batched speedup %.2fx (%s) below floor %.2fx",
			bestBig, bestBigSpec, *minSpeedup)
	}
	fmt.Printf("OK: best 8+ relation batched speedup %.2fx (%s) >= %.2fx\n",
		bestBig, bestBigSpec, *minSpeedup)
}

func findRow(rows []row, path string) (row, bool) {
	for _, r := range rows {
		if r.Path == path {
			return r, true
		}
	}
	return row{}, false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "planner_check: "+format+"\n", args...)
	os.Exit(1)
}
