package t3_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Latency-style results come out as ns/op; accuracy-style
// experiments run once per benchmark and report their q-errors through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every row and
// series the paper reports. cmd/t3bench prints the same results as formatted
// tables.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/compiled"
	"t3/internal/engine/plan"
	"t3/internal/experiments"
	"t3/internal/gbdt"
	"t3/internal/treec"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared quick-config experiment environment.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.QuickConfig())
	})
	return benchEnv
}

// benchQueries returns the TPC-DS test queries and the trained model.
func benchQueries(b *testing.B) (*t3.Model, []*benchdata.BenchedQuery) {
	b.Helper()
	e := env(b)
	c, err := e.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	m, err := e.T3()
	if err != nil {
		b.Fatal(err)
	}
	return m, c.AllTest()
}

// --- Table 1: single-prediction latency -----------------------------------

func BenchmarkTable1_T3Compiled(b *testing.B) {
	m, test := benchQueries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictPlan(test[i%len(test)].Query.Root, t3.TrueCards)
	}
}

func BenchmarkTable1_T3Interpreted(b *testing.B) {
	m, test := benchQueries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictInterpreted(test[i%len(test)].Query.Root, t3.TrueCards)
	}
}

func BenchmarkTable1_ZeroShotNN(b *testing.B) {
	e := env(b)
	nn, err := e.ZeroShot()
	if err != nil {
		b.Fatal(err)
	}
	_, test := benchQueries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.PredictSeconds(test[i%len(test)].Query.Root, plan.TrueCards)
	}
}

func BenchmarkTable1_StageHierarchy(b *testing.B) {
	res, err := env(b).RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.StageCache.Nanoseconds()), "cache-ns")
	b.ReportMetric(float64(res.StageDT.Nanoseconds()), "dt-ns")
	b.ReportMetric(float64(res.StageNN.Nanoseconds()), "nn-ns")
	b.ReportMetric(float64(res.StageAvg.Nanoseconds()), "avg-ns")
}

// Model-only evaluation on the checked-in default model: interpreted node
// walking vs flattened arrays vs ahead-of-time generated Go code (the
// repository's lleaves analogue). This isolates the 22us -> 4us contrast of
// the paper's Table 1.
func defaultModelVectors(b *testing.B) (*gbdt.Model, *treec.Flat, [][]float64) {
	b.Helper()
	m, err := gbdt.Load("models/t3_default.json")
	if err != nil {
		b.Skipf("default model unavailable: %v", err)
	}
	if m.NumFeatures != compiled.NumFeatures() {
		b.Skip("generated code out of date; rerun cmd/t3compile")
	}
	rng := rand.New(rand.NewSource(9))
	vs := make([][]float64, 256)
	for i := range vs {
		v := make([]float64, m.NumFeatures)
		for j := range v {
			if rng.Intn(3) == 0 {
				v[j] = rng.Float64() * 1e6
			}
		}
		vs[i] = v
	}
	return m, treec.Flatten(m), vs
}

func BenchmarkTable1_ModelEvalInterpreted(b *testing.B) {
	m, _, vs := defaultModelVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(vs[i%len(vs)])
	}
}

func BenchmarkTable1_ModelEvalFlattened(b *testing.B) {
	_, flat, vs := defaultModelVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.Predict(vs[i%len(vs)])
	}
}

func BenchmarkTable1_ModelEvalGenerated(b *testing.B) {
	_, _, vs := defaultModelVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compiled.Predict(vs[i%len(vs)])
	}
}

func BenchmarkTable1_ModelEvalPacked(b *testing.B) {
	m, _, vs := defaultModelVectors(b)
	packed := treec.Pack(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed.Predict(vs[i%len(vs)])
	}
}

// BenchmarkPredictSingle contrasts the pre-packed hot path (allocate fresh
// vectors via PlanVectors, evaluate on the flattened float64 tier) with the
// allocation-free scratch path over the packed tier. The packed/scratch row
// must win on ns/op and report 0 allocs/op.
func BenchmarkPredictSingle(b *testing.B) {
	m, test := benchQueries(b)
	flat := m.Compiled()
	b.Run("flat-featurize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			root := test[i%len(test)].Query.Root
			vecs, _ := m.Registry().PlanVectors(root, t3.TrueCards)
			for _, v := range vecs {
				flat.Predict(v)
			}
		}
	})
	b.Run("packed-scratch", func(b *testing.B) {
		var s t3.PredictScratch
		for _, q := range test {
			m.PredictPlanScratch(q.Query.Root, t3.TrueCards, &s)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictPlanScratch(test[i%len(test)].Query.Root, t3.TrueCards, &s)
		}
	})
	b.Run("packed-batch", func(b *testing.B) {
		roots := make([]*t3.Plan, len(test))
		for i, q := range test {
			roots[i] = q.Query.Root
		}
		out := make([]time.Duration, len(roots))
		m.PredictBatchInto(roots, t3.TrueCards, out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictBatchInto(roots, t3.TrueCards, out)
		}
		// Report per-plan cost so the row is comparable to the others.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(roots)), "ns/plan")
	})
}

// --- Table 2: throughput ---------------------------------------------------

func BenchmarkTable2_Throughput(b *testing.B) {
	res, err := env(b).RunTable2()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.Model {
		case "T3 (compiled)":
			b.ReportMetric(r.Single, "t3-single-qps")
			b.ReportMetric(r.Batched, "t3-batched-qps")
		case "T3 interpreted":
			b.ReportMetric(r.Single, "interp-single-qps")
		case "Zero Shot NN":
			b.ReportMetric(r.Single, "nn-single-qps")
		}
	}
}

// --- Table 3: benchmark deviations ------------------------------------------

func BenchmarkTable3_Deviations(b *testing.B) {
	res, err := env(b).RunTable3()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Summary.Avg, "avg-qerr")
	b.ReportMetric(res.Summary.P50, "p50-qerr")
	b.ReportMetric(res.Summary.P90, "p90-qerr")
}

// --- Table 4: headline accuracy ---------------------------------------------

func BenchmarkTable4_Accuracy(b *testing.B) {
	res, err := env(b).RunTable4()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.Split {
		case "Train Queries":
			b.ReportMetric(r.Summary.Avg, "train-avg-qerr")
		case "All TPC-DS Test Queries":
			b.ReportMetric(r.Summary.Avg, "test-avg-qerr")
			b.ReportMetric(r.Summary.P50, "test-p50-qerr")
			b.ReportMetric(r.Summary.P90, "test-p90-qerr")
		case "TPC-DS Benchmark Queries":
			b.ReportMetric(r.Summary.Avg, "fixed-avg-qerr")
		}
	}
}

// --- Table 5: join-ordering optimization time --------------------------------

func BenchmarkTable5_DPsize(b *testing.B) {
	res, err := env(b).RunTable5()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.CostModel {
		case "Cout":
			b.ReportMetric(float64(r.OptTime.Microseconds()), "cout-opt-us")
			b.ReportMetric(float64(r.ModelCalls), "cout-calls")
		case "T3":
			b.ReportMetric(float64(r.OptTime.Microseconds()), "t3-opt-us")
			b.ReportMetric(float64(r.ModelCalls), "t3-calls")
			b.ReportMetric(float64(r.TimePerCall().Nanoseconds()), "t3-ns/call")
		}
	}
}

// --- Table 6: plan quality ---------------------------------------------------

func BenchmarkTable6_PlanQuality(b *testing.B) {
	res, err := env(b).RunTable6()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.CostModel {
		case "Cout":
			b.ReportMetric(r.ExecTime.Seconds()*1e3, "cout-exec-ms")
		case "T3":
			b.ReportMetric(r.ExecTime.Seconds()*1e3, "t3-exec-ms")
		case "Native DB":
			b.ReportMetric(r.ExecTime.Seconds()*1e3, "native-exec-ms")
		}
	}
}

// --- Figure 1: latency vs accuracy scatter -----------------------------------

func BenchmarkFig1_Scatter(b *testing.B) {
	res, err := env(b).RunFig1()
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range res.Points {
		switch p.Model {
		case "T3 (compiled)":
			b.ReportMetric(float64(p.Latency.Nanoseconds()), "t3-ns")
			b.ReportMetric(p.P50, "t3-p50-qerr")
		case "Zero Shot NN":
			b.ReportMetric(float64(p.Latency.Nanoseconds()), "nn-ns")
			b.ReportMetric(p.P50, "nn-p50-qerr")
		case "AutoWLM-style DT":
			b.ReportMetric(p.P50, "dt-p50-qerr")
		}
	}
}

// --- Figure 5: latency by pipeline count --------------------------------------

func benchPipelineVectors(b *testing.B, n int) ([][]float64, *t3.Model) {
	b.Helper()
	m, test := benchQueries(b)
	var pool [][]float64
	for _, q := range test {
		vs, _ := m.Registry().PlanVectors(q.Query.Root, plan.TrueCards)
		pool = append(pool, vs...)
		if len(pool) >= 2000 {
			break
		}
	}
	rng := rand.New(rand.NewSource(17))
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = pool[rng.Intn(len(pool))]
	}
	return vs, m
}

func benchmarkFig5Compiled(b *testing.B, n int) {
	vs, m := benchPipelineVectors(b, n)
	flat := m.Compiled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			flat.Predict(v)
		}
	}
}

func benchmarkFig5Interpreted(b *testing.B, n int) {
	vs, m := benchPipelineVectors(b, n)
	gbm := m.Boosted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			gbm.Predict(v)
		}
	}
}

func BenchmarkFig5_Compiled_1(b *testing.B)      { benchmarkFig5Compiled(b, 1) }
func BenchmarkFig5_Compiled_10(b *testing.B)     { benchmarkFig5Compiled(b, 10) }
func BenchmarkFig5_Compiled_100(b *testing.B)    { benchmarkFig5Compiled(b, 100) }
func BenchmarkFig5_Compiled_1000(b *testing.B)   { benchmarkFig5Compiled(b, 1000) }
func BenchmarkFig5_Interpreted_1(b *testing.B)   { benchmarkFig5Interpreted(b, 1) }
func BenchmarkFig5_Interpreted_10(b *testing.B)  { benchmarkFig5Interpreted(b, 10) }
func BenchmarkFig5_Interpreted_100(b *testing.B) { benchmarkFig5Interpreted(b, 100) }
func BenchmarkFig5_Interpreted_1000(b *testing.B) {
	benchmarkFig5Interpreted(b, 1000)
}

func BenchmarkFig5_InterpretedMT_1000(b *testing.B) {
	vs, m := benchPipelineVectors(b, 1000)
	flat := m.Compiled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.PredictBatchParallel(vs, 0)
	}
}

// --- Parallel training and batched prediction ---------------------------------

// trainCorpus generates a fixed synthetic regression problem large enough for
// per-feature histogram fan-out to matter.
func trainCorpus(n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.Float64() * 100
		}
		y := x[0]*0.5 + math.Log1p(x[1]) - x[2]*x[3]*0.001
		if x[4] > 50 {
			y += 10
		}
		xs[i] = x
		ys[i] = y
	}
	return xs, ys
}

// BenchmarkTrain measures GBDT training wall-clock by worker count on the
// same corpus; models are bit-for-bit identical across the sub-benchmarks.
// The hist-subtraction pair isolates the histogram-subtraction trick at one
// worker: "off" rescans both children of every split, "on" (the default
// everywhere else) scans only the smaller child and derives the sibling.
func BenchmarkTrain(b *testing.B) {
	xs, ys := trainCorpus(16000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := gbdt.DefaultParams()
			p.NumRounds = 20
			p.Seed = 5
			p.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := gbdt.Train(p, xs, ys, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, noSub := range []bool{false, true} {
		name := "hist-subtraction=on"
		if noSub {
			name = "hist-subtraction=off"
		}
		b.Run(name, func(b *testing.B) {
			p := gbdt.DefaultParams()
			p.NumRounds = 20
			p.Seed = 5
			p.Workers = 1
			p.NoHistSubtraction = noSub
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := gbdt.Train(p, xs, ys, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures batched whole-plan prediction (featurization
// + compiled evaluation fanned out over the shared pool) against the
// one-plan-at-a-time loop of BenchmarkTable1_T3Compiled.
func BenchmarkPredictBatch(b *testing.B) {
	m, test := benchQueries(b)
	roots := make([]*t3.Plan, len(test))
	for i, q := range test {
		roots[i] = q.Query.Root
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(roots, t3.TrueCards)
	}
}

// --- Figures 6-14: accuracy experiments ---------------------------------------

func BenchmarkFig6_RunningTimes(b *testing.B) {
	res, err := env(b).RunFig6()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Min*1e6, "min-us")
	b.ReportMetric(res.Max*1e3, "max-ms")
}

func BenchmarkFig7_ErrorDistribution(b *testing.B) {
	res, err := env(b).RunFig7()
	if err != nil {
		b.Fatal(err)
	}
	total, small := 0, 0
	for i, c := range res.Hist.Counts {
		total += c
		if i < 4 { // q-error <= 1.5
			small += c
		}
	}
	b.ReportMetric(float64(small)/float64(total)*100, "pct-below-1.5")
}

func BenchmarkFig8_QueryTypes(b *testing.B) {
	res, err := env(b).RunFig8()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Group == "Fixed" {
			b.ReportMetric(r.Summary.P50, "fixed-p50-qerr")
		}
		if r.Group == "SeJSiA" {
			b.ReportMetric(r.Summary.P50, "sejsia-p50-qerr")
		}
	}
}

func BenchmarkFig9_LeaveOneOut(b *testing.B) {
	res, err := env(b).RunFig9()
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	for _, r := range res.Rows {
		if r.Summary.P50 > worst {
			worst = r.Summary.P50
		}
	}
	b.ReportMetric(worst, "worst-p50-qerr")
}

func BenchmarkFig10_JOBComparison(b *testing.B) {
	res, err := env(b).RunFig10()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.T3.P50, "t3-p50-qerr")
	b.ReportMetric(res.ZeroShot.P50, "nn-p50-qerr")
}

func BenchmarkFig11_CardinalityModes(b *testing.B) {
	res, err := env(b).RunFig11()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.TrainPerfectEvalPerfect.P50, "perfect-p50")
	b.ReportMetric(res.TrainPerfectEvalEst.P50, "est-eval-p50")
	b.ReportMetric(res.TrainEstEvalEst.P50, "est-both-p50")
}

func BenchmarkFig12_Degradation(b *testing.B) {
	res, err := env(b).RunFig12()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.T3P50[0], "t3-exact-p50")
	b.ReportMetric(res.T3P50[len(res.T3P50)-1], "t3-1000x-p50")
	b.ReportMetric(res.NNP50[len(res.NNP50)-1], "nn-1000x-p50")
}

func BenchmarkFig13_Ablation(b *testing.B) {
	res, err := env(b).RunFig13()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.PerTuple.P50, "per-tuple-p50")
	b.ReportMetric(res.PerPipeline.P50, "per-pipeline-p50")
	b.ReportMetric(res.PerQuery.P50, "per-query-p50")
}

func BenchmarkFig14_BenchmarkRuns(b *testing.B) {
	res, err := env(b).RunFig14()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.P50[0], "runs1-p50")
	b.ReportMetric(res.P50[len(res.P50)-1], "runs10-p50")
}
