package t3

import (
	"math"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/genplan"
	"t3/internal/planio"
)

// genPlans draws a spread of generated plans across every scenario.
func genPlans(seeds int) []*genplan.Case {
	var cases []*genplan.Case
	for seed := int64(0); seed < int64(seeds); seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			cases = append(cases, genplan.Generate(seed, sc))
		}
	}
	return cases
}

// TestGeneratedPlanPredictionSumsOverPipelines checks the Figure-2 identity
// on generated plans through an independent path: the whole-plan prediction
// must equal the sum of per-pipeline predictions obtained one pipeline at a
// time.
func TestGeneratedPlanPredictionSumsOverPipelines(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	for _, g := range genPlans(15) {
		if !g.FiniteCards {
			continue // NaN feature values make sums incomparable
		}
		total, per := m.PredictPlan(g.Root, TrueCards)
		pipes := plan.Decompose(g.Root)
		if len(per) != len(pipes) {
			t.Fatalf("seed=%d scenario=%s: %d predictions for %d pipelines",
				g.Seed, g.Scenario, len(per), len(pipes))
		}
		var sum int64
		for i, p := range pipes {
			pred := m.PredictPipeline(p, TrueCards)
			if pred.Total != per[i].Total {
				t.Fatalf("seed=%d scenario=%s pipeline %d: standalone %v != in-plan %v",
					g.Seed, g.Scenario, i, pred.Total, per[i].Total)
			}
			sum += int64(pred.Total)
		}
		if int64(total) != sum {
			t.Fatalf("seed=%d scenario=%s: total %d != pipeline sum %d", g.Seed, g.Scenario, total, sum)
		}
	}
}

// TestGeneratedPlanScratchReuse reuses one scratch across heterogeneous
// generated plans and checks every prediction matches a fresh-scratch call.
func TestGeneratedPlanScratchReuse(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	var s PredictScratch
	for _, g := range genPlans(10) {
		got, gotPer := m.PredictPlanScratch(g.Root, TrueCards, &s)
		want, wantPer := m.PredictPlan(g.Root, TrueCards)
		if got != want || len(gotPer) != len(wantPer) {
			t.Fatalf("seed=%d scenario=%s: reused scratch %v (%d pipelines) != fresh %v (%d)",
				g.Seed, g.Scenario, got, len(gotPer), want, len(wantPer))
		}
		for i := range gotPer {
			// Hostile annotations can put NaN in Cardinality, so compare
			// floats by bits.
			if gotPer[i].Index != wantPer[i].Index ||
				gotPer[i].Total != wantPer[i].Total ||
				math.Float64bits(gotPer[i].PerTupleSeconds) != math.Float64bits(wantPer[i].PerTupleSeconds) ||
				math.Float64bits(gotPer[i].Cardinality) != math.Float64bits(wantPer[i].Cardinality) {
				t.Fatalf("seed=%d scenario=%s pipeline %d: %+v != %+v",
					g.Seed, g.Scenario, i, gotPer[i], wantPer[i])
			}
		}
	}
}

// TestGeneratedPlanPredictionSurvivesPlanIO round-trips generated plans
// through the JSON plan format and checks predictions are unchanged — the
// serialized annotations carry everything the predictor reads.
func TestGeneratedPlanPredictionSurvivesPlanIO(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	tripped := 0
	for _, g := range genPlans(15) {
		if !g.FiniteCards {
			continue // JSON cannot carry NaN/Inf annotations
		}
		data, err := planio.Marshal(g.Root)
		if err != nil {
			t.Fatalf("seed=%d scenario=%s: marshal: %v", g.Seed, g.Scenario, err)
		}
		back, err := planio.Unmarshal(data)
		if err != nil {
			t.Fatalf("seed=%d scenario=%s: unmarshal: %v", g.Seed, g.Scenario, err)
		}
		want, wantPer := m.PredictPlan(g.Root, TrueCards)
		got, gotPer := m.PredictPlan(back, TrueCards)
		if got != want || len(gotPer) != len(wantPer) {
			t.Fatalf("seed=%d scenario=%s: decoded-plan prediction %v != original %v",
				g.Seed, g.Scenario, got, want)
		}
		tripped++
	}
	if tripped < 40 {
		t.Fatalf("only %d generated plans round-tripped", tripped)
	}
}

// TestGeneratedPlanBatchWorkerInvariance predicts the same generated plans
// at several worker counts and checks the batch output never depends on the
// parallelism.
func TestGeneratedPlanBatchWorkerInvariance(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	var roots []*Plan
	for _, g := range genPlans(8) {
		roots = append(roots, g.Root)
	}
	defer m.SetWorkers(0)
	m.SetWorkers(1)
	want := m.PredictBatch(roots, TrueCards)
	for _, workers := range []int{2, 4, 7} {
		m.SetWorkers(workers)
		got := m.PredictBatch(roots, TrueCards)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d plan %d: %v != %v at workers=1", workers, i, got[i], want[i])
			}
		}
	}
}
