package t3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPredictBatchMatchesPredictPlan checks, over randomly drawn plan
// subsets and worker counts, that batched prediction is exactly the
// per-plan prediction loop.
func TestPredictBatchMatchesPredictPlan(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	test := c.AllTest()

	property := func(seed int64, rawWorkers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		roots := make([]*Plan, n)
		for i := range roots {
			roots[i] = test[rng.Intn(len(test))].Query.Root
		}
		m.SetWorkers(int(rawWorkers % 9)) // 0..8 workers
		batch := m.PredictBatch(roots, TrueCards)
		if len(batch) != n {
			return false
		}
		for i, root := range roots {
			want, _ := m.PredictPlan(root, TrueCards)
			if batch[i] != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
	m.SetWorkers(0)
}

func TestPredictBatchEmptyAndSingle(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	if got := m.PredictBatch(nil, TrueCards); len(got) != 0 {
		t.Fatalf("empty batch returned %d predictions", len(got))
	}
	root := c.AllTest()[0].Query.Root
	want, _ := m.PredictPlan(root, TrueCards)
	if got := m.PredictBatch([]*Plan{root}, TrueCards); len(got) != 1 || got[0] != want {
		t.Fatalf("single-plan batch %v, want [%v]", got, want)
	}
}
