//go:build !race

package t3

const raceEnabled = false
