module t3

go 1.24
