// Package t3 is the public API of this reproduction of "T3: Accurate and
// Fast Performance Prediction for Relational Database Systems With Compiled
// Decision Trees" (Rieger & Neumann, SIGMOD 2025).
//
// T3 predicts the wall-clock execution time of a query from its annotated
// physical plan, without running it. It combines three ideas:
//
//   - Pipeline-based plan representation: the plan is decomposed into
//     pipelines; each pipeline becomes one flat feature vector and is
//     predicted individually; the query prediction is the sum (§2.2).
//   - Tuple-centric targets: the model predicts the (log-transformed) time
//     to push one tuple through the pipeline and multiplies by the
//     pipeline's input cardinality (§2.4).
//   - Compiled decision trees: a gradient-boosted ensemble evaluated in a
//     flattened, compiled form for microsecond-level latency (§2.6).
//
// The typical flow is: build or obtain annotated plans (see
// internal/workload and internal/benchdata for generators and the
// benchmarking harness), train with Train, and predict with
// Model.PredictPlan. Trained models serialize to JSON with Save/Load and
// compile to Go source with internal/treec.GenGo (cmd/t3compile).
package t3

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/gbdt"
	"t3/internal/obs"
	"t3/internal/obs/trace"
	"t3/internal/par"
	"t3/internal/qerror"
	"t3/internal/treec"
	"t3/internal/wire"
)

// Re-exported types so that API consumers can name the core concepts without
// reaching into internal packages.
type (
	// Plan is an annotated physical query plan node.
	Plan = plan.Node
	// Pipeline is one decomposed pipeline of a plan.
	Pipeline = plan.Pipeline
	// CardMode selects true or estimated cardinality annotations.
	CardMode = plan.CardMode
	// Params configures gradient-boosted-tree training.
	Params = gbdt.Params
	// BenchedQuery is a benchmarked query with per-pipeline timings.
	BenchedQuery = benchdata.BenchedQuery
)

// Cardinality modes.
const (
	// TrueCards predicts from measured cardinalities ("perfect" mode).
	TrueCards = plan.TrueCards
	// EstCards predicts from estimator outputs.
	EstCards = plan.EstCards
)

// DefaultParams returns the paper's training configuration: 200 trees with
// roughly 30 leaves, MAPE objective, 20% validation split.
func DefaultParams() Params { return gbdt.DefaultParams() }

// Model is a trained T3 performance predictor. All prediction methods are
// safe for concurrent use.
type Model struct {
	reg    *feature.Registry
	gbm    *gbdt.Model
	flat   *treec.Flat
	packed *treec.Packed
	// workers sizes the pool PredictBatch fans out over (0 = the shared
	// GOMAXPROCS-sized pool).
	workers int
	// scratches recycles PredictScratch values across internal prediction
	// calls (PredictPlan, batch workers) so the steady-state hot path is
	// allocation-free.
	scratches sync.Pool
}

// SetWorkers configures how many workers PredictBatch uses (0 = GOMAXPROCS
// via the process-wide shared pool).
func (m *Model) SetWorkers(n int) { m.workers = n }

// Registry returns the feature registry used by the model.
func (m *Model) Registry() *feature.Registry { return m.reg }

// Boosted returns the underlying gradient-boosted ensemble (the interpreted
// form).
func (m *Model) Boosted() *gbdt.Model { return m.gbm }

// Compiled returns the flattened (compiled) evaluator.
func (m *Model) Compiled() *treec.Flat { return m.flat }

// Packed returns the cache-packed evaluator — the tier behind PredictPlan
// and the batch paths.
func (m *Model) Packed() *treec.Packed { return m.packed }

// Tier names the evaluation tier serving Model predictions.
func (m *Model) Tier() string { return "packed (16-byte nodes, float32 thresholds)" }

// TrainOptions configures Train.
type TrainOptions struct {
	// Params are the boosting parameters (DefaultParams when zero).
	Params Params
	// CardMode selects which cardinality annotations the feature vectors
	// are built from. The paper trains on perfect cardinalities by default
	// (§2.1) and studies estimated ones in §5.6.
	CardMode CardMode
	// Runs caps how many timing runs are used to form the median target
	// (0 = all). Figure 14 varies this.
	Runs int
}

// Train fits a T3 model on benchmarked queries: every pipeline of every
// query becomes one example with a tuple-centric transformed target.
func Train(benched []*BenchedQuery, opts TrainOptions) (*Model, error) {
	if len(benched) == 0 {
		return nil, errors.New("t3: no training queries")
	}
	p := opts.Params
	if p.NumRounds == 0 {
		p = DefaultParams()
	}
	reg := feature.NewDefaultRegistry()
	xs, ys := benchdata.Examples(reg, benched, opts.CardMode, opts.Runs)
	gbm, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("t3: training failed: %w", err)
	}
	gbm.FeatureNames = reg.Names()
	return NewModel(gbm)
}

// NewModel wraps a trained (or loaded) boosted ensemble with the default
// feature registry and compiles it.
func NewModel(gbm *gbdt.Model) (*Model, error) {
	reg := feature.NewDefaultRegistry()
	if gbm.NumFeatures != reg.NumFeatures() {
		return nil, fmt.Errorf("t3: model has %d features, registry has %d", gbm.NumFeatures, reg.NumFeatures())
	}
	return &Model{reg: reg, gbm: gbm, flat: treec.Flatten(gbm), packed: treec.Pack(gbm)}, nil
}

// PipelinePrediction is the predicted execution of one pipeline.
type PipelinePrediction struct {
	// Index is the pipeline's position in execution order.
	Index int
	// PerTupleSeconds is the predicted time in seconds to push one tuple
	// into the pipeline (often far below a nanosecond, hence not a
	// time.Duration).
	PerTupleSeconds float64
	// Cardinality is the pipeline input cardinality used for scaling.
	Cardinality float64
	// Total is PerTupleSeconds × Cardinality.
	Total time.Duration
}

// PredictScratch is caller-owned reusable state for the allocation-free
// prediction path: pipeline decomposition storage, one flat feature buffer,
// and the per-pipeline prediction slice. The zero value is ready to use. A
// scratch must not be shared between concurrent predictions; keep one per
// goroutine (Model's internal paths recycle them through a sync.Pool).
type PredictScratch struct {
	feat  feature.Scratch
	preds []PipelinePrediction
	// tr, when set, receives the per-stage spans of the next prediction
	// instead of an independently sampled flight-recorder trace (see
	// AttachTrace).
	tr *trace.Trace
}

// AttachTrace routes the next prediction's stage spans into a caller-owned
// flight-recorder trace — the serving tier attaches its request trace so
// decode, cache, and model stages land on one timeline. Pass nil to detach.
// While a trace is attached the prediction path does not begin (or publish)
// its own.
func (s *PredictScratch) AttachTrace(tr *trace.Trace) { s.tr = tr }

// PredictPlanScratch is PredictPlan over a caller-owned scratch: after the
// scratch warms up (one call), featurize → predict → per-pipeline sum run
// with zero heap allocations. The returned predictions alias the scratch and
// are valid only until its next use.
//
// The path is instrumented: every call counts into obs.Predictions and
// records its end-to-end latency; one in every few calls (obs.StageSampler)
// additionally records decompose/featurize/tree-eval spans into the stage
// histograms, and an independently sampled subset records the same spans
// into the flight recorder (trace.Default) — unless the caller attached its
// own trace via AttachTrace, which then receives the spans instead. All
// recording is atomic adds on preallocated histograms and pooled trace
// buffers, so the zero-alloc guarantee holds with observability on.
func (m *Model) PredictPlanScratch(root *Plan, mode CardMode, s *PredictScratch) (time.Duration, []PipelinePrediction) {
	start := time.Now()
	sampled := obs.StageSampler.Sample()
	tr := s.tr
	owned := false
	if tr == nil {
		tr = trace.Default.Begin(trace.KindPredict, uint8(mode))
		owned = tr != nil
	}
	timed := sampled || tr != nil
	t0 := start
	if owned {
		// The trace's clock started inside Begin, after start was taken;
		// re-baseline so span offsets cannot go negative.
		t0 = tr.Start()
	}
	pipelines := plan.DecomposeInto(root, &s.feat.Pipes)
	if timed {
		if sampled {
			obs.PredictDecompose.Since(t0)
		}
		tr.Record(trace.StageDecompose, t0, 0)
		t0 = time.Now()
	}
	vecs := m.reg.EncodeDecomposed(&s.feat, pipelines, mode)
	if timed {
		if sampled {
			obs.PredictFeaturize.Since(t0)
		}
		tr.Record(trace.StageFeaturize, t0, 0)
		t0 = time.Now()
	}
	s.preds = s.preds[:0]
	var total time.Duration
	for i, v := range vecs {
		pred := m.predictVec(v, pipelines[i], mode)
		pred.Index = pipelines[i].Index
		total += pred.Total
		s.preds = append(s.preds, pred)
	}
	if timed {
		if sampled {
			obs.PredictTreeEval.Since(t0)
		}
		tr.Record(trace.StageTreeEval, t0, uint32(len(vecs)))
	}
	obs.Predictions.Inc()
	obs.PredictLatency.Since(start)
	if owned {
		tr.Fingerprint = trace.KeyFingerprint(wire.PlanKey(root, mode))
		tr.PredictedNs = total.Nanoseconds()
		trace.Default.Publish(tr)
	}
	return total, s.preds
}

// PredictPlan predicts the execution time of a whole query: it decomposes
// the plan into pipelines, predicts each, and sums (Figure 2). Latency-bound
// callers should hold a PredictScratch and use PredictPlanScratch instead —
// same results, zero steady-state allocations.
func (m *Model) PredictPlan(root *Plan, mode CardMode) (time.Duration, []PipelinePrediction) {
	var s PredictScratch
	return m.PredictPlanScratch(root, mode, &s)
}

// getScratch hands out a recycled scratch for internal prediction paths.
func (m *Model) getScratch() *PredictScratch {
	if s, ok := m.scratches.Get().(*PredictScratch); ok {
		return s
	}
	return &PredictScratch{}
}

// PredictBatch predicts the execution time of many plans at once,
// featurizing and evaluating them across the worker pool (see SetWorkers).
// out[i] corresponds to roots[i]. For throughput-bound callers — schedulers
// admitting a queue of queries, join enumeration over candidate plans — this
// replaces the one-plan-at-a-time PredictPlan loop.
func (m *Model) PredictBatch(roots []*Plan, mode CardMode) []time.Duration {
	out := make([]time.Duration, len(roots))
	m.PredictBatchInto(roots, mode, out)
	return out
}

// PredictBatchInto is PredictBatch into a caller-owned output slice
// (len(out) must equal len(roots)). Worker pools are cached process-wide and
// per-chunk scratches are recycled, so nothing is constructed per call; with
// one worker the batch loop itself is allocation-free.
func (m *Model) PredictBatchInto(roots []*Plan, mode CardMode, out []time.Duration) {
	if len(out) != len(roots) {
		panic(fmt.Sprintf("t3: PredictBatchInto out has len %d, want %d", len(out), len(roots)))
	}
	obs.PredictBatches.Inc()
	obs.PredictBatchSize.Record(uint64(len(roots)))
	pool := par.Sized(m.workers)
	if pool.Workers() == 1 || len(roots) == 1 {
		s := m.getScratch()
		for i, root := range roots {
			out[i], _ = m.PredictPlanScratch(root, mode, s)
		}
		m.scratches.Put(s)
		return
	}
	chunk := len(roots)/(4*pool.Workers()) + 1
	pool.For(len(roots), chunk, func(lo, hi int) {
		s := m.getScratch()
		for i := lo; i < hi; i++ {
			out[i], _ = m.PredictPlanScratch(roots[i], mode, s)
		}
		m.scratches.Put(s)
	})
}

// PredictPipeline predicts the execution time of a single pipeline.
func (m *Model) PredictPipeline(p *Pipeline, mode CardMode) PipelinePrediction {
	v := m.reg.PipelineVector(p, mode)
	pred := m.predictVec(v, p, mode)
	pred.Index = p.Index
	return pred
}

func (m *Model) predictVec(v []float64, p *Pipeline, mode CardMode) PipelinePrediction {
	t := m.packed.Predict(v)
	perTuple := benchdata.InverseTarget(t)
	card := feature.SourceCard(p, mode)
	return PipelinePrediction{
		PerTupleSeconds: perTuple,
		Cardinality:     card,
		Total:           time.Duration(perTuple * card * float64(time.Second)),
	}
}

// PredictInterpreted predicts a whole query using the interpreted (struct
// walking) evaluator instead of the compiled one — the "T3 interpreted" row
// of Table 1.
func (m *Model) PredictInterpreted(root *Plan, mode CardMode) time.Duration {
	start := time.Now()
	vecs, pipelines := m.reg.PlanVectors(root, mode)
	var total float64
	for i, v := range vecs {
		perTuple := benchdata.InverseTarget(m.gbm.Predict(v))
		total += perTuple * feature.SourceCard(pipelines[i], mode)
	}
	obs.PredictInterpreted.Since(start)
	return time.Duration(total * float64(time.Second))
}

// RecordObserved scores one prediction against the measured execution time
// of the same plan and records the q-error into the online drift histogram
// (obs.QErrorDrift). Serving systems call this whenever ground truth
// becomes available — the engine ran a plan that was previously predicted —
// so estimation-error drift is visible on /metrics before it rots accuracy.
func RecordObserved(predicted, actual time.Duration) float64 {
	q := qerror.QError(predicted.Seconds(), actual.Seconds())
	obs.QErrorObservations.Inc()
	obs.QErrorDrift.ObserveFloat(q)
	return q
}

// RecordObservedPlan is RecordObserved when the mispredicted plan is still
// at hand: besides feeding the drift histogram it offers the plan to the
// worst-misprediction exemplar store (trace.Exemplars), which captures the
// top-K offenders as replayable wire frames for /debug/worst.
func RecordObservedPlan(root *Plan, mode CardMode, predicted, actual time.Duration) float64 {
	q := RecordObserved(predicted, actual)
	trace.Exemplars.Offer(root, mode, predicted.Nanoseconds(), actual.Nanoseconds(), time.Now())
	return q
}

// PredictAndRun predicts the plan, then actually executes it on the
// in-memory engine and feeds the resulting q-error into the drift
// histogram and the exemplar store via RecordObservedPlan. It returns the
// prediction, the measured execution time, and the q-error between them.
//
// Every round records a full flight-recorder trace (predict stages, one
// span per executed pipeline with its morsel/parallelism shape, merge
// spans): rounds are engine-execution-bound, so tracing them all costs
// nothing by comparison and /debug/queries always shows ground truth.
func (m *Model) PredictAndRun(root *Plan, mode CardMode) (predicted, actual time.Duration, q float64, err error) {
	tr := trace.Default.ForceBegin(trace.KindRun, uint8(mode))
	s := m.getScratch()
	s.tr = tr
	predicted, _ = m.PredictPlanScratch(root, mode, s)
	s.tr = nil
	m.scratches.Put(s)

	execStart := time.Now()
	res, err := exec.Run(root, false)
	if err != nil {
		tr.Flags |= trace.FlagError
		tr.PredictedNs = predicted.Nanoseconds()
		trace.Default.Publish(tr)
		return predicted, 0, 0, fmt.Errorf("t3: executing plan: %w", err)
	}
	actual = res.Total
	q = RecordObservedPlan(root, mode, predicted, actual)

	// Lift the engine's pipeline timings into the trace: pipelines ran
	// back to back from execStart, so cumulative durations are offsets.
	off := execStart.Sub(tr.Start()).Nanoseconds()
	for _, pt := range res.Pipelines {
		d := pt.Duration.Nanoseconds()
		tr.Add(trace.StagePipeline, off,
			d, trace.PipelineArg(pt.Index, pt.Morsels, pt.Parallelism))
		if pt.Merge > 0 {
			// The merge is the tail of the pipeline's duration.
			tr.Add(trace.StageMerge, off+d-pt.Merge.Nanoseconds(),
				pt.Merge.Nanoseconds(), uint32(pt.Index))
		}
		off += d
	}
	tr.Fingerprint = trace.KeyFingerprint(wire.PlanKey(root, mode))
	tr.PredictedNs = predicted.Nanoseconds()
	tr.ActualNs = actual.Nanoseconds()
	if qm := q * 1000; qm >= 0 && qm < 1e18 { // guard degenerate q-errors
		tr.QErrorMilli = uint64(qm)
	}
	trace.Default.Publish(tr)
	return predicted, actual, q, nil
}

// Save writes the model to a JSON file.
func (m *Model) Save(path string) error {
	data, err := json.Marshal(m.gbm)
	if err != nil {
		return fmt.Errorf("t3: marshal model: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model written by Save.
func Load(path string) (*Model, error) {
	gbm, err := gbdt.Load(path)
	if err != nil {
		return nil, err
	}
	return NewModel(gbm)
}

// Featurize exposes the pipeline feature encoding for tooling: it returns
// the feature vectors and pipelines of a plan.
func Featurize(root *Plan, mode CardMode) ([][]float64, []*Pipeline) {
	return feature.NewDefaultRegistry().PlanVectors(root, mode)
}
